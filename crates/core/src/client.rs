//! The Transaction Client: the library an application instance links
//! against to run transactions (§2.2, §4).
//!
//! The client keeps the optimistic read/write sets of the active
//! transaction, serves `begin`/`read` against the local datacenter's store
//! (the paper's prototype optimization), buffers `write`s locally, and at
//! `commit` time drives the Paxos or Paxos-CP proposer (Algorithm 2) over
//! the simulated network. The embedding actor (a workload driver or an
//! application model) forwards incoming messages and timer expirations and
//! executes the [`ClientAction`]s the client returns.
//!
//! Names cross into the interned data plane exactly once, at this API
//! boundary: the string-accepting methods (`begin`, `read`, `write`) intern
//! through the cluster's shared [`walog::SymbolTable`] and delegate to the
//! id-based fast paths (`begin_id`, `read_id`, `write_id`) that hot
//! workload drivers call directly with pre-interned ids.

use crate::datacenter::SharedCore;
use crate::directory::Directory;
use crate::msg::Msg;
use paxos::{
    AbortReason, CommitProtocol, PaxosMsg, Proposer, ProposerAction, ProposerConfig, ProposerEvent,
    TimerKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{NodeId, SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use walog::{
    AttrId, GroupId, ItemRef, KeyId, LogPosition, ReadRecord, Transaction, TxnId, WriteRecord,
};

/// Tuning knobs of a Transaction Client.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Which commit protocol to run.
    pub protocol: CommitProtocol,
    /// Promotion cap (`None` = unlimited, the paper's evaluation setting).
    pub max_promotions: Option<u32>,
    /// Whether Paxos-CP combination is enabled.
    pub combination: bool,
    /// Whether the leader fast path is attempted.
    pub fast_path: bool,
    /// Reply timeout (the paper uses 2 s for loss detection).
    pub message_timeout: SimDuration,
    /// Upper bound of the randomized backoff before re-preparing.
    pub backoff_max: SimDuration,
    /// Extra window Paxos-CP waits for straggler prepare replies when votes
    /// are present (see `paxos::TimerKind::Gather`).
    pub gather_window: SimDuration,
}

impl ClientConfig {
    /// Basic Paxos with the paper's timeouts.
    pub fn basic() -> Self {
        ClientConfig {
            protocol: CommitProtocol::BasicPaxos,
            max_promotions: Some(0),
            combination: false,
            fast_path: true,
            message_timeout: SimDuration::from_secs(2),
            backoff_max: SimDuration::from_millis(150),
            gather_window: SimDuration::from_millis(50),
        }
    }

    /// Paxos-CP with the paper's evaluation settings (unlimited promotions).
    pub fn cp() -> Self {
        ClientConfig {
            protocol: CommitProtocol::PaxosCp,
            max_promotions: None,
            combination: true,
            fast_path: true,
            ..ClientConfig::basic()
        }
    }

    /// Config for the requested protocol variant.
    pub fn for_protocol(protocol: CommitProtocol) -> Self {
        match protocol {
            CommitProtocol::BasicPaxos => ClientConfig::basic(),
            CommitProtocol::PaxosCp => ClientConfig::cp(),
        }
    }

    /// The concrete delay for a proposer timer request — shared by the
    /// single-transaction client and the batching committer so their
    /// timeout policies can never diverge.
    pub(crate) fn timer_delay(&self, kind: TimerKind, rng: &mut StdRng) -> SimDuration {
        match kind {
            TimerKind::ReplyTimeout => self.message_timeout,
            TimerKind::Backoff => {
                let max = self.backoff_max.as_micros().max(1);
                SimDuration::from_micros(rng.gen_range(0..max))
            }
            TimerKind::Gather => self.gather_window,
        }
    }

    pub(crate) fn proposer_config(&self, num_replicas: usize) -> ProposerConfig {
        let base = match self.protocol {
            CommitProtocol::BasicPaxos => ProposerConfig::basic(num_replicas),
            CommitProtocol::PaxosCp => ProposerConfig::cp(num_replicas),
        };
        base.with_max_promotions(match self.protocol {
            CommitProtocol::BasicPaxos => Some(0),
            CommitProtocol::PaxosCp => self.max_promotions,
        })
        .with_combination(self.combination)
        .with_fast_path(self.fast_path)
    }
}

/// Outcome of one transaction, as reported to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnResult {
    /// Whether the transaction committed.
    pub committed: bool,
    /// True when the transaction had no writes (read-only transactions
    /// commit locally without touching the log, §2.2).
    pub read_only: bool,
    /// Number of Paxos-CP promotions it went through.
    pub promotions: u32,
    /// Whether it committed inside a combined (multi-transaction) log entry.
    pub combined: bool,
    /// Prepare/accept rounds executed across all positions.
    pub rounds: u32,
    /// Commit-protocol latency: from the `commit` call to the commit/abort
    /// decision (what Figures 4(b) and 5(b) plot).
    pub latency: SimDuration,
    /// End-to-end latency: from `begin` to the decision (includes the
    /// application's own operation execution time).
    pub total_latency: SimDuration,
    /// Abort reason when not committed.
    pub abort_reason: Option<AbortReason>,
}

/// Effects the embedding actor must carry out on behalf of the client.
#[derive(Clone, Debug)]
pub enum ClientAction {
    /// Send a message to a node.
    Send(NodeId, Msg),
    /// Arm a timer; deliver the tag back via [`TransactionClient::on_timer`].
    ArmTimer {
        /// Delay before firing.
        delay: SimDuration,
        /// Tag to echo back.
        tag: u64,
    },
    /// The active transaction finished.
    Finished(TxnResult),
}

/// Errors from misusing the client API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// `read`/`write`/`commit` called with no active transaction.
    NoActiveTransaction,
    /// `begin` called while a transaction is still active.
    TransactionInProgress,
    /// Commit already in progress for the active transaction.
    CommitInProgress,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ClientError::NoActiveTransaction => "no active transaction",
            ClientError::TransactionInProgress => "a transaction is already active",
            ClientError::CommitInProgress => "commit already in progress",
        };
        f.write_str(text)
    }
}

impl std::error::Error for ClientError {}

struct ActiveTxn {
    group: GroupId,
    read_position: LogPosition,
    /// The datacenter holding this transaction's read lease (the home at
    /// `begin` time — re-homing mid-transaction must release there).
    lease_replica: usize,
    reads: Vec<ReadRecord>,
    writes: Vec<WriteRecord>,
    write_index: BTreeMap<ItemRef, String>,
    began_at: SimTime,
    commit_started_at: Option<SimTime>,
    commit: Option<CommitDriver>,
}

struct CommitDriver {
    proposer: Proposer,
    /// Client timer tag → proposer timer token.
    timer_tokens: HashMap<u64, u64>,
}

/// The Transaction Client library.
pub struct TransactionClient {
    node: NodeId,
    home_replica: usize,
    directory: Arc<Directory>,
    config: ClientConfig,
    rng: StdRng,
    seq: u64,
    next_tag: u64,
    active: Option<ActiveTxn>,
}

impl TransactionClient {
    /// Create a client running on `node`, homed in the datacenter with
    /// replica index `home_replica`.
    pub fn new(
        node: NodeId,
        home_replica: usize,
        directory: Arc<Directory>,
        config: ClientConfig,
    ) -> Self {
        TransactionClient {
            node,
            home_replica,
            directory,
            config,
            rng: StdRng::seed_from_u64(0x9e37_79b9 ^ node.0 as u64),
            seq: 0,
            next_tag: 0,
            active: None,
        }
    }

    /// The datacenter this client currently considers local.
    pub fn home_replica(&self) -> usize {
        self.home_replica
    }

    /// Re-home the client to another datacenter (failover after its local
    /// datacenter became unavailable).
    pub fn set_home_replica(&mut self, replica: usize) {
        self.home_replica = replica;
    }

    /// The cluster's shared symbol table (for callers that pre-intern).
    pub fn symbols(&self) -> &Arc<walog::SymbolTable> {
        self.directory.symbols()
    }

    /// Whether a transaction is currently active.
    pub fn in_transaction(&self) -> bool {
        self.active.is_some()
    }

    /// Whether the active transaction is in its commit phase.
    pub fn committing(&self) -> bool {
        self.active.as_ref().is_some_and(|t| t.commit.is_some())
    }

    fn home_core(&self) -> SharedCore {
        self.directory.core(self.home_replica)
    }

    /// Start a transaction on the named group at simulated time `now`,
    /// interning the name through the cluster symbol table.
    pub fn begin(&mut self, now: SimTime, group: &str) -> Result<(), ClientError> {
        let group = self.directory.symbols().group(group);
        self.begin_id(now, group)
    }

    /// Start a transaction on a pre-interned group. The read position is the
    /// local datacenter's latest gap-free log position; the client leases it
    /// so version GC keeps every version the transaction's reads can need
    /// until the commit decision.
    pub fn begin_id(&mut self, now: SimTime, group: GroupId) -> Result<(), ClientError> {
        if self.active.is_some() {
            return Err(ClientError::TransactionInProgress);
        }
        let read_position = {
            let core = self.home_core();
            let mut core = core.lock();
            let read_position = core.read_position(group);
            core.begin_read_lease(group, read_position);
            read_position
        };
        self.active = Some(ActiveTxn {
            group,
            read_position,
            lease_replica: self.home_replica,
            reads: Vec::new(),
            writes: Vec::new(),
            write_index: BTreeMap::new(),
            began_at: now,
            commit_started_at: None,
            commit: None,
        });
        Ok(())
    }

    /// Release the read lease a finished transaction held.
    fn release_lease(&self, txn: &ActiveTxn) {
        self.directory
            .core(txn.lease_replica)
            .lock()
            .end_read_lease(txn.group, txn.read_position);
    }

    /// Read one item of the active transaction's group, interning the names.
    pub fn read(&mut self, key: &str, attr: &str) -> Result<Option<String>, ClientError> {
        let item = self.directory.symbols().item(key, attr);
        self.read_id(item.key, item.attr)
    }

    /// Read one pre-interned item of the active transaction's group.
    ///
    /// Reads first consult the transaction's own write set (A1,
    /// read-your-writes); otherwise they are served from the local store at
    /// the transaction's read position (A2) and recorded in the read set.
    pub fn read_id(&mut self, key: KeyId, attr: AttrId) -> Result<Option<String>, ClientError> {
        let txn = self
            .active
            .as_mut()
            .ok_or(ClientError::NoActiveTransaction)?;
        if txn.commit.is_some() {
            return Err(ClientError::CommitInProgress);
        }
        let item = ItemRef::new(key, attr);
        if let Some(value) = txn.write_index.get(&item) {
            return Ok(Some(value.clone()));
        }
        let observed = self
            .directory
            .core(self.home_replica)
            .lock()
            .read(txn.group, key, attr, txn.read_position)
            .unwrap_or_else(|_gap| {
                // The read position was taken from the local gap-free prefix,
                // so a gap at or below it is impossible; treat defensively as
                // a missing value rather than panicking in release runs.
                debug_assert!(
                    false,
                    "local read below the gap-free prefix cannot need catch-up"
                );
                None
            });
        txn.reads.push(ReadRecord {
            item,
            observed: observed.clone(),
        });
        Ok(observed)
    }

    /// Buffer a write to one item of the active transaction's group,
    /// interning the names.
    pub fn write(
        &mut self,
        key: &str,
        attr: &str,
        value: impl Into<String>,
    ) -> Result<(), ClientError> {
        let item = self.directory.symbols().item(key, attr);
        self.write_id(item.key, item.attr, value)
    }

    /// Buffer a write to one pre-interned item of the active transaction's
    /// group.
    pub fn write_id(
        &mut self,
        key: KeyId,
        attr: AttrId,
        value: impl Into<String>,
    ) -> Result<(), ClientError> {
        let txn = self
            .active
            .as_mut()
            .ok_or(ClientError::NoActiveTransaction)?;
        if txn.commit.is_some() {
            return Err(ClientError::CommitInProgress);
        }
        let value = value.into();
        let item = ItemRef::new(key, attr);
        txn.write_index.insert(item, value.clone());
        txn.writes.push(WriteRecord { item, value });
        Ok(())
    }

    /// Try to commit the active transaction. Read-only transactions finish
    /// immediately; read/write transactions start the commit protocol and
    /// finish later via [`ClientAction::Finished`].
    pub fn commit(&mut self, now: SimTime) -> Result<Vec<ClientAction>, ClientError> {
        let txn = self
            .active
            .as_mut()
            .ok_or(ClientError::NoActiveTransaction)?;
        if txn.commit.is_some() {
            return Err(ClientError::CommitInProgress);
        }
        txn.commit_started_at = Some(now);
        if txn.writes.is_empty() {
            let began = txn.began_at;
            let finished = self.active.take().expect("checked above");
            self.release_lease(&finished);
            return Ok(vec![ClientAction::Finished(TxnResult {
                committed: true,
                read_only: true,
                promotions: 0,
                combined: false,
                rounds: 0,
                latency: SimDuration::ZERO,
                total_latency: now.since(began),
                abort_reason: None,
            })]);
        }
        self.seq += 1;
        let id = TxnId::new(self.node.0, self.seq);
        let transaction = Transaction::new(
            id,
            txn.group,
            txn.read_position,
            txn.reads.clone(),
            txn.writes.clone(),
        );
        let commit_position = txn.read_position.next();
        let cfg = self.config.proposer_config(self.directory.num_replicas());
        let mut proposer = Proposer::new(
            cfg,
            txn.group,
            self.node.0 as u64,
            transaction,
            commit_position,
        );
        let actions = proposer.start();
        txn.commit = Some(CommitDriver {
            proposer,
            timer_tokens: HashMap::new(),
        });
        Ok(self.translate(now, actions))
    }

    /// Feed an incoming message (commit-protocol replies) into the client.
    pub fn on_message(&mut self, now: SimTime, from: NodeId, msg: &Msg) -> Vec<ClientAction> {
        let Msg::Paxos(paxos_msg) = msg else {
            return Vec::new();
        };
        let Some(replica) = self.directory.replica_of_service(from) else {
            return Vec::new();
        };
        let event = match paxos_msg {
            PaxosMsg::PrepareReply {
                position,
                ballot,
                promised,
                next_bal,
                last_vote,
                ..
            } => ProposerEvent::PrepareReply {
                from: replica,
                position: *position,
                ballot: *ballot,
                promised: *promised,
                next_bal: *next_bal,
                last_vote: last_vote.clone(),
            },
            PaxosMsg::AcceptReply {
                position,
                ballot,
                accepted,
                ..
            } => ProposerEvent::AcceptReply {
                from: replica,
                position: *position,
                ballot: *ballot,
                accepted: *accepted,
            },
            PaxosMsg::LeaderClaimReply {
                position, granted, ..
            } => ProposerEvent::FastPathReply {
                position: *position,
                granted: *granted,
            },
            _ => return Vec::new(),
        };
        self.drive(now, event)
    }

    /// Feed a timer expiration (tag previously returned in
    /// [`ClientAction::ArmTimer`]) into the client.
    pub fn on_timer(&mut self, now: SimTime, tag: u64) -> Vec<ClientAction> {
        let Some(txn) = self.active.as_mut() else {
            return Vec::new();
        };
        let Some(driver) = txn.commit.as_mut() else {
            return Vec::new();
        };
        let Some(token) = driver.timer_tokens.remove(&tag) else {
            return Vec::new();
        };
        self.drive(now, ProposerEvent::Timer { token })
    }

    fn drive(&mut self, now: SimTime, event: ProposerEvent) -> Vec<ClientAction> {
        let Some(txn) = self.active.as_mut() else {
            return Vec::new();
        };
        let Some(driver) = txn.commit.as_mut() else {
            return Vec::new();
        };
        let actions = driver.proposer.on_event(event);
        self.translate(now, actions)
    }

    fn translate(&mut self, now: SimTime, actions: Vec<ProposerAction>) -> Vec<ClientAction> {
        let mut out = Vec::new();
        for action in actions {
            match action {
                ProposerAction::Broadcast(msg) => {
                    for replica in 0..self.directory.num_replicas() {
                        out.push(ClientAction::Send(
                            self.directory.service_node(replica),
                            Msg::Paxos(msg.clone()),
                        ));
                    }
                }
                ProposerAction::SendToLeader(msg) => {
                    let leader = self.directory.leader_replica(
                        self.home_replica,
                        msg.group(),
                        msg.position(),
                    );
                    out.push(ClientAction::Send(
                        self.directory.service_node(leader),
                        Msg::Paxos(msg),
                    ));
                }
                ProposerAction::ArmTimer { token, kind } => {
                    let delay = self.config.timer_delay(kind, &mut self.rng);
                    self.next_tag += 1;
                    let tag = self.next_tag;
                    if let Some(txn) = self.active.as_mut() {
                        if let Some(driver) = txn.commit.as_mut() {
                            driver.timer_tokens.insert(tag, token);
                        }
                    }
                    out.push(ClientAction::ArmTimer { delay, tag });
                }
                ProposerAction::Learned { position, entry } => {
                    // Install what we learned into the local datacenter so the
                    // next transaction's read position advances immediately.
                    if let Some(txn) = self.active.as_ref() {
                        self.home_core()
                            .lock()
                            .install_entry(txn.group, position, entry);
                    }
                }
                ProposerAction::Finished(outcome) => {
                    let txn = self
                        .active
                        .take()
                        .expect("finished implies an active transaction");
                    self.release_lease(&txn);
                    let commit_started = txn.commit_started_at.unwrap_or(txn.began_at);
                    out.push(ClientAction::Finished(TxnResult {
                        committed: outcome.committed,
                        read_only: false,
                        promotions: outcome.promotions,
                        combined: outcome.combined,
                        rounds: outcome.rounds,
                        latency: now.since(commit_started),
                        total_latency: now.since(txn.began_at),
                        abort_reason: outcome.abort_reason,
                    }));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DatacenterCore;
    use walog::LogEntry;

    fn directory_with_one_dc() -> (Arc<Directory>, SharedCore) {
        let dir = Directory::new();
        let core = DatacenterCore::shared("dc0", 0);
        dir.register_datacenter(NodeId(0), core.clone());
        (dir, core)
    }

    fn seeded_entry(dir: &Directory, core: &SharedCore, position: u64, attr: &str, value: &str) {
        let group = dir.symbols().group("g");
        let txn = Transaction::builder(TxnId::new(0, position), group, LogPosition(position - 1))
            .write(dir.symbols().item("row", attr), value)
            .build();
        core.lock().install_entry(
            group,
            LogPosition(position),
            Arc::new(LogEntry::single(txn)),
        );
    }

    #[test]
    fn begin_read_write_and_read_your_writes() {
        let (dir, core) = directory_with_one_dc();
        seeded_entry(&dir, &core, 1, "a", "committed");
        let mut client = TransactionClient::new(NodeId(5), 0, dir, ClientConfig::cp());
        dir_register(&client);
        client.begin(SimTime::ZERO, "g").unwrap();
        assert!(client.in_transaction());
        // Read of committed data.
        assert_eq!(
            client.read("row", "a").unwrap().as_deref(),
            Some("committed")
        );
        // Read of never-written data.
        assert_eq!(client.read("row", "b").unwrap(), None);
        // Read-your-writes.
        client.write("row", "b", "mine").unwrap();
        assert_eq!(client.read("row", "b").unwrap().as_deref(), Some("mine"));
        // API misuse is reported.
        assert_eq!(
            client.begin(SimTime::ZERO, "g").unwrap_err(),
            ClientError::TransactionInProgress
        );
    }

    fn dir_register(client: &TransactionClient) {
        client
            .directory
            .register_client(client.node, client.home_replica);
    }

    #[test]
    fn read_only_transactions_commit_immediately() {
        let (dir, core) = directory_with_one_dc();
        seeded_entry(&dir, &core, 1, "a", "x");
        let mut client = TransactionClient::new(NodeId(5), 0, dir, ClientConfig::basic());
        client.begin(SimTime::from_micros(10), "g").unwrap();
        client.read("row", "a").unwrap();
        let actions = client.commit(SimTime::from_micros(30)).unwrap();
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            ClientAction::Finished(result) => {
                assert!(result.committed);
                assert!(result.read_only);
                assert_eq!(result.latency, SimDuration::ZERO);
                assert_eq!(result.total_latency, SimDuration::from_micros(20));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!client.in_transaction());
    }

    #[test]
    fn commit_of_write_transaction_contacts_the_leader_or_replicas() {
        let (dir, _core) = directory_with_one_dc();
        let mut client = TransactionClient::new(NodeId(5), 0, dir, ClientConfig::cp());
        client.begin(SimTime::ZERO, "g").unwrap();
        client.write("row", "a", "1").unwrap();
        let actions = client.commit(SimTime::ZERO).unwrap();
        // Fast path enabled: first action is a leader claim to the local
        // service, plus a timer.
        assert!(matches!(
            &actions[0],
            ClientAction::Send(NodeId(0), Msg::Paxos(PaxosMsg::LeaderClaim { .. }))
        ));
        assert!(matches!(actions[1], ClientAction::ArmTimer { .. }));
        assert!(client.committing());
        // Operations during commit are rejected.
        assert_eq!(
            client.read("row", "a").unwrap_err(),
            ClientError::CommitInProgress
        );
        assert_eq!(
            client.commit(SimTime::ZERO).unwrap_err(),
            ClientError::CommitInProgress
        );
    }

    #[test]
    fn id_fast_paths_match_the_string_api() {
        let (dir, core) = directory_with_one_dc();
        seeded_entry(&dir, &core, 1, "a", "seeded");
        let group = dir.symbols().group("g");
        let item = dir.symbols().item("row", "a");
        let mut client = TransactionClient::new(NodeId(5), 0, dir, ClientConfig::cp());
        client.begin_id(SimTime::ZERO, group).unwrap();
        assert_eq!(
            client.read_id(item.key, item.attr).unwrap().as_deref(),
            Some("seeded")
        );
        client.write_id(item.key, item.attr, "next").unwrap();
        // Read-your-writes through the string API sees the id-written value.
        assert_eq!(client.read("row", "a").unwrap().as_deref(), Some("next"));
    }

    #[test]
    fn errors_without_active_transaction() {
        let (dir, _core) = directory_with_one_dc();
        let mut client = TransactionClient::new(NodeId(5), 0, dir, ClientConfig::basic());
        assert_eq!(
            client.read("row", "a").unwrap_err(),
            ClientError::NoActiveTransaction
        );
        assert_eq!(
            client.write("row", "a", "1").unwrap_err(),
            ClientError::NoActiveTransaction
        );
        assert!(client.commit(SimTime::ZERO).is_err());
    }

    #[test]
    fn rehoming_changes_the_local_datacenter() {
        let dir = Directory::new();
        let core0 = DatacenterCore::shared("dc0", 0);
        let core1 = DatacenterCore::shared("dc1", 1);
        dir.register_datacenter(NodeId(0), core0);
        dir.register_datacenter(NodeId(1), core1.clone());
        seeded_entry(&dir, &core1, 1, "a", "dc1-value");
        let mut client = TransactionClient::new(NodeId(5), 0, dir, ClientConfig::basic());
        assert_eq!(client.home_replica(), 0);
        client.set_home_replica(1);
        client.begin(SimTime::ZERO, "g").unwrap();
        assert_eq!(
            client.read("row", "a").unwrap().as_deref(),
            Some("dc1-value")
        );
    }
}
