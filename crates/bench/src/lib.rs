//! # bench-suite — regenerating the paper's evaluation (Figures 4–8)
//!
//! Each module corresponds to one figure of the paper's §6 and produces the
//! same rows/series the figure plots: commit counts out of 500 split by
//! promotion round, and commit latency split by promotion round, for basic
//! Paxos and Paxos-CP.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p bench-suite --bin experiments -- all
//! ```
//!
//! or a single figure with `-- fig4a`, `-- fig6`, etc. `--quick` scales the
//! workload down (fewer transactions) for smoke runs. Criterion
//! micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod openloop;
pub mod readmostly;
pub mod report;
pub mod routes;
pub mod scaling;

pub use figures::{
    ablation_specs, fig4_specs, fig5_specs, fig6_specs, fig7_specs, fig8_specs, FigureRun,
};
pub use openloop::{
    format_openloop_summary, format_openloop_table, knee, peak_committed_tps, run_openloop_ladder,
    OpenLoopSweepConfig,
};
pub use readmostly::{
    format_readmostly_table, read_scaling, run_readmostly_sweep, ReadMostlySweepConfig,
};
pub use report::{
    format_commit_table, format_latency_table, format_per_replica_table, results_to_json,
};
pub use routes::{committed_tps, format_route_table, route_compare_specs, route_spec};
pub use scaling::{
    adaptive_latency_specs, batch_sweep_specs, format_pipeline_table, format_scaling_table,
    group_sweep_specs, pipeline_sweep_specs, run_scaling, ScalingResult, ScalingSpec,
};
