//! Experiment definitions, one set per paper figure.

use mdstore::{CommitProtocol, Topology};
use simnet::SimDuration;
use workload::{run_experiment, ExperimentResult, ExperimentSpec, Placement};

/// A named batch of experiments belonging to one figure, plus the results
/// once run.
#[derive(Clone, Debug)]
pub struct FigureRun {
    /// Figure identifier (e.g. `"fig4a"`).
    pub figure: String,
    /// One result per (cluster/parameter, protocol) combination, in the
    /// order the specs were defined.
    pub results: Vec<ExperimentResult>,
}

/// Scale a spec down for quick smoke runs (1/5 of the transactions).
fn scale(spec: ExperimentSpec, quick: bool) -> ExperimentSpec {
    if quick {
        let per_client = (spec.transactions_per_client / 5).max(5);
        let clients = spec.num_clients;
        spec.with_clients(clients, per_client)
    } else {
        spec
    }
}

fn both_protocols(make: impl Fn(CommitProtocol) -> ExperimentSpec) -> Vec<ExperimentSpec> {
    vec![
        make(CommitProtocol::BasicPaxos),
        make(CommitProtocol::PaxosCp),
    ]
}

/// Figure 4(a)/(b): vary the number of replicas (2–5 datacenters). The
/// paper's clusters grow from two Virginia AZs to all five sites.
pub fn fig4_specs(quick: bool) -> Vec<ExperimentSpec> {
    let clusters = ["VV", "VVV", "VVVO", "VVVOC"];
    let mut specs = Vec::new();
    for (i, cluster) in clusters.iter().enumerate() {
        let topology = Topology::from_name(cluster).expect("valid cluster name");
        for spec in both_protocols(|protocol| {
            ExperimentSpec::paper_default(topology.clone(), protocol)
                .with_seed(42 + i as u64)
                .named(format!("fig4-{cluster}-{}", protocol.name()))
        }) {
            specs.push(scale(spec, quick));
        }
    }
    specs
}

/// Figure 5(a)/(b): specific datacenter combinations (VV, OV, VVV, COV).
pub fn fig5_specs(quick: bool) -> Vec<ExperimentSpec> {
    let clusters = ["VV", "OV", "VVV", "COV"];
    let mut specs = Vec::new();
    for (i, cluster) in clusters.iter().enumerate() {
        let topology = Topology::from_name(cluster).expect("valid cluster name");
        for spec in both_protocols(|protocol| {
            ExperimentSpec::paper_default(topology.clone(), protocol)
                .with_seed(52 + i as u64)
                .named(format!("fig5-{cluster}-{}", protocol.name()))
        }) {
            specs.push(scale(spec, quick));
        }
    }
    specs
}

/// Figure 6: data contention sweep — total attribute count in the entity
/// group varies from 20 (high contention) to 500 (minimal contention) on
/// three Virginia replicas.
pub fn fig6_specs(quick: bool) -> Vec<ExperimentSpec> {
    let attribute_counts = [20usize, 50, 100, 250, 500];
    let mut specs = Vec::new();
    for (i, attrs) in attribute_counts.iter().enumerate() {
        for spec in both_protocols(|protocol| {
            ExperimentSpec::paper_default(Topology::vvv(), protocol)
                .with_attributes(*attrs)
                .with_seed(62 + i as u64)
                .named(format!("fig6-{attrs}attrs-{}", protocol.name()))
        }) {
            specs.push(scale(spec, quick));
        }
    }
    specs
}

/// Figure 7: increased concurrency — the offered per-client rate of the
/// single workload instance rises from 0.5 to 8 transactions per second on
/// the VVV cluster with 100 attributes.
pub fn fig7_specs(quick: bool) -> Vec<ExperimentSpec> {
    let rates = [0.5f64, 1.0, 2.0, 4.0, 8.0];
    let mut specs = Vec::new();
    for (i, tps) in rates.iter().enumerate() {
        for spec in both_protocols(|protocol| {
            ExperimentSpec::paper_default(Topology::vvv(), protocol)
                .with_target_tps(*tps)
                .with_seed(72 + i as u64)
                .named(format!("fig7-{tps}tps-{}", protocol.name()))
        }) {
            specs.push(scale(spec, quick));
        }
    }
    specs
}

/// Figure 8: per-datacenter concurrency — the geo-distributed VOC cluster
/// with one workload instance per datacenter, 500 transactions each.
pub fn fig8_specs(quick: bool) -> Vec<ExperimentSpec> {
    both_protocols(|protocol| {
        ExperimentSpec::paper_default(Topology::voc(), protocol)
            .with_placement(Placement::RoundRobin)
            .with_clients(3, 500)
            .named(format!("fig8-VOC-{}", protocol.name()))
    })
    .into_iter()
    .map(|s| scale(s, quick))
    .collect()
}

/// Ablation study (not in the paper, but motivated by its design
/// discussion): isolate the contribution of each Paxos-CP mechanism and of
/// the leader fast path on the default VVV workload.
pub fn ablation_specs(quick: bool) -> Vec<ExperimentSpec> {
    let base = |name: &str| {
        ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::PaxosCp)
            .named(format!("ablation-{name}"))
    };
    let mut cp_no_combine = base("no-combination");
    cp_no_combine.combination = Some(false);
    let mut cp_one_promotion = base("promotions-capped-1");
    cp_one_promotion.max_promotions = Some(Some(1));
    let mut cp_two_promotions = base("promotions-capped-2");
    cp_two_promotions.max_promotions = Some(Some(2));
    let mut cp_no_fast_path = base("no-fast-path");
    cp_no_fast_path.fast_path = Some(false);
    let mut basic = ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::BasicPaxos)
        .named("ablation-basic-paxos");
    basic.fast_path = Some(true);
    let lossy = ExperimentSpec {
        topology: Topology::vvv().with_loss(0.05),
        ..base("loss-5pct")
    };
    vec![
        scale(base("full-paxos-cp"), quick),
        scale(cp_no_combine, quick),
        scale(cp_one_promotion, quick),
        scale(cp_two_promotions, quick),
        scale(cp_no_fast_path, quick),
        scale(basic, quick),
        scale(lossy, quick),
    ]
}

/// Run a batch of specs sequentially and bundle the results.
pub fn run_figure(figure: &str, specs: Vec<ExperimentSpec>) -> FigureRun {
    let results = specs.iter().map(run_experiment).collect();
    FigureRun {
        figure: figure.to_string(),
        results,
    }
}

/// Stagger and default-parameter sanity used by tests.
pub fn default_op_delay() -> SimDuration {
    ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::PaxosCp).op_delay
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_specs_cover_both_protocols() {
        assert_eq!(fig4_specs(true).len(), 8);
        assert_eq!(fig5_specs(true).len(), 8);
        assert_eq!(fig6_specs(true).len(), 10);
        assert_eq!(fig7_specs(true).len(), 10);
        assert_eq!(fig8_specs(true).len(), 2);
        assert_eq!(ablation_specs(true).len(), 7);
    }

    #[test]
    fn quick_mode_scales_down_but_keeps_structure() {
        let full = fig4_specs(false);
        let quick = fig4_specs(true);
        assert_eq!(full.len(), quick.len());
        assert!(quick[0].total_transactions() < full[0].total_transactions());
        assert_eq!(full[0].num_clients, quick[0].num_clients);
    }

    #[test]
    fn fig8_uses_round_robin_placement() {
        for spec in fig8_specs(false) {
            assert_eq!(spec.placement, Placement::RoundRobin);
            assert_eq!(spec.num_clients, 3);
        }
    }
}
