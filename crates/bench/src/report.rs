//! Plain-text tables mirroring the rows/series the paper's figures plot.

use mdstore::RunMetrics;
use workload::ExperimentResult;

/// Maximum promotion round shown as its own column; deeper rounds are folded
/// into the last column (the paper observed at most seven promotions).
const MAX_ROUNDS_SHOWN: usize = 8;

fn commits_row(metrics: &RunMetrics) -> Vec<usize> {
    let mut row = vec![0usize; MAX_ROUNDS_SHOWN];
    for (round, count) in metrics.commits_by_promotion.iter().enumerate() {
        let idx = round.min(MAX_ROUNDS_SHOWN - 1);
        row[idx] += count;
    }
    row
}

/// Commit-count table: one row per experiment, columns = commits by
/// promotion round plus totals (the bars of Figures 4(a), 5(a), 6, 7, 8).
pub fn format_commit_table(results: &[ExperimentResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>9} {:>7}  {}\n",
        "experiment", "attempted", "commits", "by promotion round (0,1,2,...)"
    ));
    for result in results {
        let rounds = commits_row(&result.totals);
        let rounds_str = rounds
            .iter()
            .map(|n| format!("{n:>4}"))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "{:<28} {:>9} {:>7}  {}\n",
            result.name, result.attempted, result.totals.committed, rounds_str
        ));
    }
    out
}

/// Latency table: mean/median/p95 commit latency overall and for round 0
/// (the stacked-latency view of Figures 4(b) and 5(b)).
pub fn format_latency_table(results: &[ExperimentResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>10} {:>10} {:>10} {:>12} {:>12}\n",
        "experiment", "mean(ms)", "p50(ms)", "p95(ms)", "round0(ms)", "promoted(ms)"
    ));
    for result in results {
        let all = result.totals.commit_latency();
        let round0 = result.totals.commit_latency_at_round(0);
        let promoted_samples: Vec<simnet::SimDuration> = result
            .totals
            .commit_latency_us_by_promotion
            .iter()
            .skip(1)
            .flatten()
            .map(|us| simnet::SimDuration::from_micros(*us))
            .collect();
        let promoted = mdstore::LatencyStats::from_samples(&promoted_samples);
        out.push_str(&format!(
            "{:<28} {:>10.1} {:>10.1} {:>10.1} {:>12.1} {:>12.1}\n",
            result.name, all.mean_ms, all.p50_ms, all.p95_ms, round0.mean_ms, promoted.mean_ms
        ));
    }
    out
}

/// Per-datacenter table for Figure 8: commits and mean latency of the
/// workload instance placed in each datacenter.
pub fn format_per_replica_table(results: &[ExperimentResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>10} {:>9} {:>10} {:>12}\n",
        "experiment", "replica", "attempted", "commits", "promoted", "mean lat(ms)"
    ));
    for result in results {
        let mut replicas: Vec<usize> = result.client_replicas.clone();
        replicas.sort_unstable();
        replicas.dedup();
        for replica in replicas {
            let metrics = result.metrics_for_replica(replica);
            out.push_str(&format!(
                "{:<28} {:>8} {:>10} {:>9} {:>10} {:>12.1}\n",
                result.name,
                replica,
                metrics.attempted,
                metrics.committed,
                metrics.promoted_commits(),
                metrics.commit_latency().mean_ms
            ));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render experiment results as a JSON array (hand-rolled — the build
/// environment has no serde). Exports every `RunMetrics` counter (the
/// `metrics-completeness` lint holds this function to that) plus identity,
/// latency summaries and network totals.
pub fn results_to_json(results: &[ExperimentResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let latency = r.totals.commit_latency();
        let abort_latency = r.totals.abort_latency();
        let rounds = r
            .totals
            .commits_by_promotion
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            concat!(
                "  {{\"name\": \"{}\", \"cluster\": \"{}\", \"protocol\": \"{}\", ",
                "\"attempted\": {}, \"committed\": {}, \"aborted\": {}, ",
                "\"read_only\": {}, \"timed_out\": {}, ",
                "\"combined_commits\": {}, \"expired_reads\": {}, ",
                "\"reclaimed_versions\": {}, \"batch_splits\": {}, ",
                "\"stale_member_aborts\": {}, \"mean_window_occupancy\": {:.3}, ",
                "\"max_pipeline_depth\": {}, ",
                "\"faults_injected\": {}, \"resubmissions\": {}, ",
                "\"duplicate_suppressions\": {}, \"last_decision_us\": {}, ",
                "\"commits_by_promotion\": [{}], ",
                "\"commit_latency_ms\": {{\"mean\": {:.3}, \"p50\": {:.3}, \"p95\": {:.3}, \"max\": {:.3}}}, ",
                "\"abort_latency_ms\": {{\"mean\": {:.3}, \"p50\": {:.3}, \"p95\": {:.3}, \"max\": {:.3}}}, ",
                "\"messages_sent\": {}, \"messages_delivered\": {}, \"duration_s\": {:.3}}}{}\n",
            ),
            json_escape(&r.name),
            json_escape(&r.cluster),
            json_escape(&r.protocol),
            r.attempted,
            r.totals.committed,
            r.totals.aborted,
            r.totals.read_only,
            r.totals.timed_out,
            r.totals.combined_commits,
            r.totals.expired_reads,
            r.totals.reclaimed_versions,
            r.totals.batch_splits,
            r.totals.stale_member_aborts,
            r.totals.mean_window_occupancy(),
            r.totals.max_pipeline_depth(),
            r.totals.faults_injected,
            r.totals.resubmissions,
            r.totals.duplicate_suppressions,
            r.totals.last_decision_us,
            rounds,
            latency.mean_ms,
            latency.p50_ms,
            latency.p95_ms,
            latency.max_ms,
            abort_latency.mean_ms,
            abort_latency.p50_ms,
            abort_latency.p95_ms,
            abort_latency.max_ms,
            r.net.sent,
            r.net.delivered,
            r.duration.as_secs_f64(),
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdstore::RunMetrics;
    use simnet::{NetStats, SimDuration};

    fn fake_result(name: &str) -> ExperimentResult {
        let totals = RunMetrics {
            attempted: 10,
            committed: 7,
            aborted: 3,
            commits_by_promotion: vec![5, 2],
            commit_latency_us_by_promotion: vec![vec![1_000, 2_000], vec![5_000]],
            ..RunMetrics::default()
        };
        ExperimentResult {
            name: name.into(),
            cluster: "VVV".into(),
            protocol: "paxos-cp".into(),
            attempted: 10,
            totals: totals.clone(),
            per_client: vec![totals],
            client_replicas: vec![0],
            check: Vec::new(),
            net: NetStats::default(),
            duration: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn tables_contain_the_experiment_rows() {
        let results = vec![fake_result("exp-a"), fake_result("exp-b")];
        let commits = format_commit_table(&results);
        assert!(commits.contains("exp-a") && commits.contains("exp-b"));
        assert!(commits.contains("   5    2"));
        let latency = format_latency_table(&results);
        assert!(latency.contains("exp-a"));
        let per_replica = format_per_replica_table(&results);
        assert!(per_replica.contains("exp-a"));
        assert!(per_replica.lines().count() >= 3);
    }

    #[test]
    fn json_output_contains_core_fields_and_escapes() {
        let mut results = vec![fake_result("exp-a"), fake_result("quote\"name")];
        results[0].totals.combined_commits = 3;
        results[0].totals.reclaimed_versions = 11;
        results[0].totals.batch_splits = 2;
        results[0].totals.window_occupancy = vec![4];
        results[0].totals.pipeline_depth = vec![2];
        results[0].totals.read_only = 1;
        results[0].totals.timed_out = 4;
        results[0].totals.faults_injected = 6;
        results[0].totals.resubmissions = 8;
        results[0].totals.duplicate_suppressions = 5;
        results[0].totals.last_decision_us = 900_000;
        results[0].totals.abort_latency_us = vec![3_000];
        let json = results_to_json(&results);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert!(json.contains("\"name\": \"exp-a\""));
        assert!(json.contains("quote\\\"name"));
        assert!(json.contains("\"commits_by_promotion\": [5, 2]"));
        assert!(json.contains("\"combined_commits\": 3"));
        assert!(json.contains("\"reclaimed_versions\": 11"));
        assert!(json.contains("\"batch_splits\": 2"));
        assert!(json.contains("\"mean_window_occupancy\": 4.000"));
        assert!(json.contains("\"max_pipeline_depth\": 2"));
        assert!(json.contains("\"read_only\": 1"));
        assert!(json.contains("\"timed_out\": 4"));
        assert!(json.contains("\"faults_injected\": 6"));
        assert!(json.contains("\"resubmissions\": 8"));
        assert!(json.contains("\"duplicate_suppressions\": 5"));
        assert!(json.contains("\"last_decision_us\": 900000"));
        assert!(json.contains("\"abort_latency_ms\": {\"mean\": 3.000"));
    }

    #[test]
    fn deep_promotion_rounds_fold_into_last_column() {
        let metrics = RunMetrics {
            commits_by_promotion: vec![1; 12],
            ..RunMetrics::default()
        };
        let row = commits_row(&metrics);
        assert_eq!(row.len(), 8);
        assert_eq!(row[7], 5); // rounds 7..11 folded
        assert_eq!(row.iter().sum::<usize>(), 12);
    }
}
