//! Commit-route comparison: the paper's contended workload run under
//! [`CommitRoute::Direct`] (client-driven proposer, the paper-faithful
//! baseline) versus [`CommitRoute::Submitted`] (service-hosted group
//! commit engine).
//!
//! The workload is the paper's shape — 10 operations per transaction, 50 %
//! reads, one contended row — but offered at saturation: every client
//! keeps several transactions open, so commits *overlap*. Under `Direct`,
//! overlapping commits of one group are dueling Paxos proposers: they race
//! for the same position, promote past each other and pay a round trip per
//! transaction. Under `Submitted`, every client's commits funnel into the
//! group home's one [`mdstore::GroupCommitter`], which windows compatible
//! transactions into shared instances and pipelines the rest — one
//! prepare/accept exchange decides many transactions and nobody duels.
//!
//! Every run is verified for replica agreement and one-copy
//! serializability by `run_experiment` before its numbers are reported.

use mdstore::{CommitProtocol, CommitRoute, Topology};
use workload::{ExperimentResult, ExperimentSpec};

/// The contended comparison point for one route at `writers` concurrent
/// clients (all in one datacenter, one transaction group, one row).
pub fn route_spec(route: CommitRoute, writers: usize, quick: bool) -> ExperimentSpec {
    let txns = if quick { 6 } else { 20 };
    ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::PaxosCp)
        .named(format!("routes-{writers}w-{}", route.name()))
        .with_clients(writers, txns)
        .with_route(route)
        .with_max_open(4)
        .with_target_tps(50.0)
        .with_attributes(60)
        .with_seed(7_700 + writers as u64)
}

/// Both comparison points (Direct first) at `writers` concurrent clients.
pub fn route_compare_specs(writers: usize, quick: bool) -> Vec<ExperimentSpec> {
    vec![
        route_spec(CommitRoute::Direct, writers, quick),
        route_spec(CommitRoute::Submitted, writers, quick),
    ]
}

/// Committed transactions per second of simulated time, measured over the
/// working span (first start → last decision).
pub fn committed_tps(result: &ExperimentResult) -> f64 {
    let span_us = result.totals.last_decision_us;
    if span_us == 0 {
        0.0
    } else {
        result.totals.committed as f64 * 1_000_000.0 / span_us as f64
    }
}

/// Format a route comparison as an aligned text table.
pub fn format_route_table(results: &[ExperimentResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "route      attempted  committed  aborted  combined  p50(ms)  sim_s    committed tx/s\n",
    );
    for r in results {
        let span_s = r.totals.last_decision_us as f64 / 1_000_000.0;
        let route = r.name.rsplit('-').next().unwrap_or("?").to_string();
        out.push_str(&format!(
            "{:<9}  {:>9}  {:>9}  {:>7}  {:>8}  {:>7.2}  {:>7.2}  {:>14.1}\n",
            route,
            r.attempted,
            r.totals.committed,
            r.totals.aborted,
            r.totals.combined_commits,
            r.totals.commit_latency().p50_ms,
            span_s,
            committed_tps(r),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::run_experiment;

    /// The PR's acceptance experiment: on the contended workload at 8
    /// concurrent writers, the submitted route must beat the direct route
    /// on committed transactions per second, with both routes passing the
    /// serializability checker (`run_experiment` panics on violation).
    #[test]
    fn submitted_route_beats_direct_on_contended_workload_at_8_writers() {
        let specs = route_compare_specs(8, true);
        let direct = run_experiment(&specs[0]);
        let submitted = run_experiment(&specs[1]);
        assert_eq!(direct.attempted, submitted.attempted, "equal offered load");
        let (d_tps, s_tps) = (committed_tps(&direct), committed_tps(&submitted));
        assert!(
            s_tps > d_tps,
            "submitted must beat direct on committed tx/s: direct {:.1} ({} committed) vs \
             submitted {:.1} ({} committed)",
            d_tps,
            direct.totals.committed,
            s_tps,
            submitted.totals.committed,
        );
        assert!(
            submitted.totals.committed >= direct.totals.committed,
            "funneling into one committer must not lose commits to dueling proposers"
        );
    }
}
