//! Experiment harness CLI: regenerate every table/figure of the paper.
//!
//! ```text
//! cargo run --release -p bench-suite --bin experiments -- all
//! cargo run --release -p bench-suite --bin experiments -- fig6 --quick
//! cargo run --release -p bench-suite --bin experiments -- fig4a --json out.json
//! cargo run --release -p bench-suite --bin experiments -- scaling
//! ```
//!
//! `scaling` runs the sharded multi-group and batch-size sweeps, and
//! `routes` the direct-vs-submitted commit-route comparison (neither part
//! of the paper; see `docs/BENCHMARKS.md`); `all` includes them alongside
//! the paper figures and the ablation.

use bench_suite::{
    ablation_specs, adaptive_latency_specs, batch_sweep_specs, committed_tps, fig4_specs,
    fig5_specs, fig6_specs, fig7_specs, fig8_specs, format_commit_table, format_latency_table,
    format_per_replica_table, format_pipeline_table, format_route_table, format_scaling_table,
    group_sweep_specs, pipeline_sweep_specs, results_to_json, route_compare_specs, run_scaling,
};
use workload::{run_experiment, ExperimentResult, ExperimentSpec};

struct Options {
    targets: Vec<String>,
    quick: bool,
    json_path: Option<String>,
}

fn parse_args() -> Options {
    let mut targets = Vec::new();
    let mut quick = false;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = args.next(),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    Options {
        targets,
        quick,
        json_path,
    }
}

fn run_batch(name: &str, specs: Vec<ExperimentSpec>) -> Vec<ExperimentResult> {
    eprintln!("== running {name}: {} experiments ==", specs.len());
    specs
        .iter()
        .map(|spec| {
            eprintln!(
                "   running {} ({} transactions)...",
                spec.name,
                spec.total_transactions()
            );
            run_experiment(spec)
        })
        .collect()
}

fn main() {
    let opts = parse_args();
    let mut all_results: Vec<ExperimentResult> = Vec::new();
    let wants = |name: &str| {
        opts.targets.iter().any(|t| t == name)
            || opts.targets.iter().any(|t| t == "all")
            || (name.starts_with("fig4") && opts.targets.iter().any(|t| t == "fig4"))
            || (name.starts_with("fig5") && opts.targets.iter().any(|t| t == "fig5"))
    };

    if wants("fig4a") || wants("fig4b") {
        let results = run_batch("figure 4", fig4_specs(opts.quick));
        println!("\n=== Figure 4(a): successful commits vs. number of replicas ===");
        println!("{}", format_commit_table(&results));
        println!("=== Figure 4(b): commit latency vs. number of replicas ===");
        println!("{}", format_latency_table(&results));
        all_results.extend(results);
    }
    if wants("fig5a") || wants("fig5b") {
        let results = run_batch("figure 5", fig5_specs(opts.quick));
        println!("\n=== Figure 5(a): successful commits per datacenter combination ===");
        println!("{}", format_commit_table(&results));
        println!("=== Figure 5(b): transaction latency per datacenter combination ===");
        println!("{}", format_latency_table(&results));
        all_results.extend(results);
    }
    if wants("fig6") {
        let results = run_batch("figure 6", fig6_specs(opts.quick));
        println!("\n=== Figure 6: varying total number of attributes (data contention), VVV ===");
        println!("{}", format_commit_table(&results));
        all_results.extend(results);
    }
    if wants("fig7") {
        let results = run_batch("figure 7", fig7_specs(opts.quick));
        println!("\n=== Figure 7: impact of increasing concurrency (offered load), VVV ===");
        println!("{}", format_commit_table(&results));
        all_results.extend(results);
    }
    if wants("fig8") {
        let results = run_batch("figure 8", fig8_specs(opts.quick));
        println!(
            "\n=== Figure 8: per-datacenter concurrency, VOC, one workload per datacenter ==="
        );
        println!("{}", format_commit_table(&results));
        println!("{}", format_per_replica_table(&results));
        println!("{}", format_latency_table(&results));
        all_results.extend(results);
    }
    if wants("scaling") {
        eprintln!("== running scaling: group and batch sweeps ==");
        let group_results: Vec<_> = group_sweep_specs(opts.quick)
            .iter()
            .map(|spec| {
                eprintln!(
                    "   running {} groups x batch {} ({} transactions)...",
                    spec.groups,
                    spec.batch_size,
                    spec.total_transactions()
                );
                run_scaling(spec)
            })
            .collect();
        println!("\n=== Scaling: group-count sweep (64 writers, batch 4, VVV) ===");
        println!("{}", format_scaling_table(&group_results));
        let batch_results: Vec<_> = batch_sweep_specs(opts.quick)
            .iter()
            .map(|spec| {
                eprintln!(
                    "   running {} groups x batch {} ({} transactions)...",
                    spec.groups,
                    spec.batch_size,
                    spec.total_transactions()
                );
                run_scaling(spec)
            })
            .collect();
        println!("=== Scaling: batch-size sweep (16 writers, 4 groups, VVV) ===");
        println!("{}", format_scaling_table(&batch_results));
        let pipeline_results: Vec<_> = pipeline_sweep_specs(opts.quick)
            .iter()
            .map(|spec| {
                eprintln!(
                    "   running pipeline depth {} x batch {} ({} transactions)...",
                    spec.pipeline_depth,
                    spec.batch_size,
                    spec.total_transactions()
                );
                run_scaling(spec)
            })
            .collect();
        println!(
            "=== Pipeline: depth 1/2/4 x batch cap 1/4/8, equal offered load (burst, VVV) ==="
        );
        println!("{}", format_pipeline_table(&pipeline_results));
        let latency_results: Vec<_> = adaptive_latency_specs(opts.quick)
            .iter()
            .map(|spec| {
                eprintln!(
                    "   running {} windows latency trickle ({} transactions)...",
                    if spec.adaptive { "adaptive" } else { "static" },
                    spec.total_transactions()
                );
                run_scaling(spec)
            })
            .collect();
        println!("=== Adaptive windows: uncontended trickle, static batch-4 vs adaptive (VVV) ===");
        println!("{}", format_pipeline_table(&latency_results));
    }
    if wants("routes") {
        let results = run_batch("routes", route_compare_specs(8, opts.quick));
        println!(
            "\n=== Commit routes: direct (client proposer) vs submitted (service-hosted \
             committer), contended workload, 8 writers, VVV ==="
        );
        println!("{}", format_route_table(&results));
        let (direct, submitted) = (&results[0], &results[1]);
        eprintln!(
            "submitted/direct committed-tx/s ratio: {:.2}",
            committed_tps(submitted) / committed_tps(direct).max(f64::EPSILON)
        );
        all_results.extend(results);
    }
    if wants("ablation") {
        let results = run_batch("ablation", ablation_specs(opts.quick));
        println!("\n=== Ablation: Paxos-CP mechanisms in isolation (VVV, paper workload) ===");
        println!("{}", format_commit_table(&results));
        println!("{}", format_latency_table(&results));
        all_results.extend(results);
    }

    if let Some(path) = opts.json_path {
        std::fs::write(&path, results_to_json(&all_results)).expect("write json output");
        eprintln!("wrote {} results to {path}", all_results.len());
    }

    // Every experiment verified serializability before returning; summarize.
    let combined: usize = all_results.iter().map(|r| r.totals.combined_commits).sum();
    let total_txns: usize = all_results.iter().map(|r| r.attempted).sum();
    eprintln!(
        "\nverified {} experiments / {} transactions (one-copy serializability + replica agreement); {} combined commits",
        all_results.len(),
        total_txns,
        combined
    );
}
