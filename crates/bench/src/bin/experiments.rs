//! Experiment harness CLI: regenerate every table/figure of the paper.
//!
//! ```text
//! cargo run --release -p bench-suite --bin experiments -- all
//! cargo run --release -p bench-suite --bin experiments -- fig6 --quick
//! cargo run --release -p bench-suite --bin experiments -- fig4a --json out.json
//! cargo run --release -p bench-suite --bin experiments -- scaling
//! ```
//!
//! `scaling` runs the sharded multi-group and batch-size sweeps, and
//! `routes` the direct-vs-submitted commit-route comparison (neither part
//! of the paper; see `docs/BENCHMARKS.md`); `all` includes them alongside
//! the paper figures and the ablation.
//!
//! `openloop` runs the open-loop latency-vs-throughput sweep on the
//! multi-threaded parallel runtime (wall-clock, not simulated time — so it
//! is *not* part of `all`). `readmostly` runs the snapshot-read scale-out
//! sweep (read throughput vs serving-replica count) on the same runtime
//! and is likewise opted into explicitly. `chaos` runs the rolling-failure scenario
//! (leader crashes, flapping partition, group-home churn) under open-loop
//! load on the deterministic simulation; it asserts serializability,
//! exactly-once and liveness, and is likewise opted into explicitly.
//! `--quick` runs the CI smoke variants; set `BENCH_JSON` to append
//! criterion-style snapshot rows.

use bench_suite::{
    ablation_specs, adaptive_latency_specs, batch_sweep_specs, committed_tps, fig4_specs,
    fig5_specs, fig6_specs, fig7_specs, fig8_specs, format_commit_table, format_latency_table,
    format_openloop_summary, format_openloop_table, format_per_replica_table,
    format_pipeline_table, format_readmostly_table, format_route_table, format_scaling_table,
    group_sweep_specs, peak_committed_tps, pipeline_sweep_specs, read_scaling, results_to_json,
    route_compare_specs, run_openloop_ladder, run_readmostly_sweep, run_scaling,
    OpenLoopSweepConfig, ReadMostlySweepConfig,
};
use workload::{
    run_chaos, run_experiment, ChaosRunResult, ChaosRunSpec, ExperimentResult, ExperimentSpec,
    OpenLoopResult, ReadMostlyResult,
};

struct Options {
    targets: Vec<String>,
    quick: bool,
    json_path: Option<String>,
}

fn parse_args() -> Options {
    let mut targets = Vec::new();
    let mut quick = false;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = args.next(),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    Options {
        targets,
        quick,
        json_path,
    }
}

fn run_batch(name: &str, specs: Vec<ExperimentSpec>) -> Vec<ExperimentResult> {
    eprintln!("== running {name}: {} experiments ==", specs.len());
    specs
        .iter()
        .map(|spec| {
            eprintln!(
                "   running {} ({} transactions)...",
                spec.name,
                spec.total_transactions()
            );
            run_experiment(spec)
        })
        .collect()
}

/// Append criterion-shim-style snapshot rows for an open-loop sweep to
/// `BENCH_JSON`, if set: per worker count, nanoseconds per committed
/// transaction at the peak (1e9 / peak committed tx/s, `iterations` = the
/// commit count behind it) and the p99 commit latency at the knee. Rows
/// merge into `BENCH_baseline.json` via the `bench_merge` binary.
fn emit_openloop_snapshot(ladders: &[(usize, Vec<OpenLoopResult>)]) {
    use bench_suite::knee;
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let mut rows: Vec<(String, f64, u64)> = Vec::new();
    for (workers, results) in ladders {
        let peak = peak_committed_tps(results);
        if peak > 0.0 {
            let committed = results
                .iter()
                .max_by(|a, b| a.committed_tps.total_cmp(&b.committed_tps))
                .map(|r| r.committed as u64)
                .unwrap_or(0);
            rows.push((
                format!("openloop/peak_ns_per_committed_txn/w{workers}"),
                1e9 / peak,
                committed,
            ));
        }
        if let Some(k) = knee(results) {
            rows.push((
                format!("openloop/knee_p99_latency/w{workers}"),
                k.latency.p99_ms * 1e6,
                k.latency.count as u64,
            ));
        }
    }
    append_bench_rows(&path, "open-loop", &rows);
}

/// Append criterion-shim-style snapshot rows for a chaos run to
/// `BENCH_JSON`, if set: the p99 open-loop commit latency across the fault
/// windows (the availability dip, ns) and the re-submission rate. The rate
/// is not a duration, so its row carries an explicit `"unit"` field per
/// the snapshot schema's value/unit convention (see `docs/BENCHMARKS.md`).
fn emit_chaos_snapshot(result: &ChaosRunResult) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    append_bench_rows(
        &path,
        "chaos",
        &[(
            "chaos/availability_dip_p99".to_string(),
            result.availability_dip_p99_us as f64 * 1e3,
            result.committed,
        )],
    );
    append_bench_rows_with_unit(
        &path,
        "chaos",
        "per_1000_commits",
        &[(
            "chaos/resubmission_rate".to_string(),
            result.resubmission_rate() * 1e3,
            result.resubmissions,
        )],
    );
}

/// Append criterion-shim-style snapshot rows for a read-mostly sweep to
/// `BENCH_JSON`, if set: per serving-replica count, the completed-read
/// throughput (a rate — the row carries `"unit": "reads_per_s"`) and the
/// read p99 latency at that point (ns).
fn emit_readmostly_snapshot(results: &[ReadMostlyResult]) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let mut tps_rows: Vec<(String, f64, u64)> = Vec::new();
    let mut p99_rows: Vec<(String, f64, u64)> = Vec::new();
    for r in results {
        let serving = r.serving_replicas;
        tps_rows.push((
            format!("readmostly/read_tps/s{serving}"),
            r.read_tps,
            r.reads_completed as u64,
        ));
        if r.read_latency.count > 0 {
            p99_rows.push((
                format!("readmostly/read_p99/s{serving}"),
                r.read_latency.p99_ms * 1e6,
                r.read_latency.count as u64,
            ));
        }
    }
    append_bench_rows_with_unit(&path, "read-mostly", "reads_per_s", &tps_rows);
    append_bench_rows(&path, "read-mostly", &p99_rows);
}

/// Append rows in the criterion-shim snapshot format (`id` / `median_ns` /
/// `mean_ns` / `iterations`) to `path`; `bench_merge` folds them into
/// `BENCH_baseline.json` by id like any other benchmark row. Values are
/// nanoseconds (no `"unit"` field — the schema default).
fn append_bench_rows(path: &str, what: &str, rows: &[(String, f64, u64)]) {
    append_rows(path, what, rows, None);
}

/// Like [`append_bench_rows`] but for rows whose value is *not* a
/// duration: each row carries an explicit `"unit"` field declaring what
/// the `median_ns`/`mean_ns` columns actually hold (the field names are
/// the shared schema's, not a promise of nanoseconds). `bench_merge`
/// preserves the extra field verbatim.
fn append_bench_rows_with_unit(path: &str, what: &str, unit: &str, rows: &[(String, f64, u64)]) {
    append_rows(path, what, rows, Some(unit));
}

fn append_rows(path: &str, what: &str, rows: &[(String, f64, u64)], unit: Option<&str>) {
    if rows.is_empty() {
        return;
    }
    let unit_field = unit
        .map(|u| format!(", \"unit\": \"{u}\""))
        .unwrap_or_default();
    let mut out = String::from("[\n");
    for (i, (id, ns, iterations)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"id\": \"{id}\", \"median_ns\": {ns:.1}, \"mean_ns\": {ns:.1}, \"iterations\": {iterations}{unit_field}}}{comma}\n"
        ));
    }
    out.push_str("]\n");
    let write = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, out.as_bytes()));
    match write {
        Ok(()) => eprintln!("appended {} {what} snapshot rows to {path}", rows.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn main() {
    let opts = parse_args();
    let mut all_results: Vec<ExperimentResult> = Vec::new();
    let wants = |name: &str| {
        opts.targets.iter().any(|t| t == name)
            || opts.targets.iter().any(|t| t == "all")
            || (name.starts_with("fig4") && opts.targets.iter().any(|t| t == "fig4"))
            || (name.starts_with("fig5") && opts.targets.iter().any(|t| t == "fig5"))
    };

    if wants("fig4a") || wants("fig4b") {
        let results = run_batch("figure 4", fig4_specs(opts.quick));
        println!("\n=== Figure 4(a): successful commits vs. number of replicas ===");
        println!("{}", format_commit_table(&results));
        println!("=== Figure 4(b): commit latency vs. number of replicas ===");
        println!("{}", format_latency_table(&results));
        all_results.extend(results);
    }
    if wants("fig5a") || wants("fig5b") {
        let results = run_batch("figure 5", fig5_specs(opts.quick));
        println!("\n=== Figure 5(a): successful commits per datacenter combination ===");
        println!("{}", format_commit_table(&results));
        println!("=== Figure 5(b): transaction latency per datacenter combination ===");
        println!("{}", format_latency_table(&results));
        all_results.extend(results);
    }
    if wants("fig6") {
        let results = run_batch("figure 6", fig6_specs(opts.quick));
        println!("\n=== Figure 6: varying total number of attributes (data contention), VVV ===");
        println!("{}", format_commit_table(&results));
        all_results.extend(results);
    }
    if wants("fig7") {
        let results = run_batch("figure 7", fig7_specs(opts.quick));
        println!("\n=== Figure 7: impact of increasing concurrency (offered load), VVV ===");
        println!("{}", format_commit_table(&results));
        all_results.extend(results);
    }
    if wants("fig8") {
        let results = run_batch("figure 8", fig8_specs(opts.quick));
        println!(
            "\n=== Figure 8: per-datacenter concurrency, VOC, one workload per datacenter ==="
        );
        println!("{}", format_commit_table(&results));
        println!("{}", format_per_replica_table(&results));
        println!("{}", format_latency_table(&results));
        all_results.extend(results);
    }
    if wants("scaling") {
        eprintln!("== running scaling: group and batch sweeps ==");
        let group_results: Vec<_> = group_sweep_specs(opts.quick)
            .iter()
            .map(|spec| {
                eprintln!(
                    "   running {} groups x batch {} ({} transactions)...",
                    spec.groups,
                    spec.batch_size,
                    spec.total_transactions()
                );
                run_scaling(spec)
            })
            .collect();
        println!("\n=== Scaling: group-count sweep (64 writers, batch 4, VVV) ===");
        println!("{}", format_scaling_table(&group_results));
        let batch_results: Vec<_> = batch_sweep_specs(opts.quick)
            .iter()
            .map(|spec| {
                eprintln!(
                    "   running {} groups x batch {} ({} transactions)...",
                    spec.groups,
                    spec.batch_size,
                    spec.total_transactions()
                );
                run_scaling(spec)
            })
            .collect();
        println!("=== Scaling: batch-size sweep (16 writers, 4 groups, VVV) ===");
        println!("{}", format_scaling_table(&batch_results));
        let pipeline_results: Vec<_> = pipeline_sweep_specs(opts.quick)
            .iter()
            .map(|spec| {
                eprintln!(
                    "   running pipeline depth {} x batch {} ({} transactions)...",
                    spec.pipeline_depth,
                    spec.batch_size,
                    spec.total_transactions()
                );
                run_scaling(spec)
            })
            .collect();
        println!(
            "=== Pipeline: depth 1/2/4 x batch cap 1/4/8, equal offered load (burst, VVV) ==="
        );
        println!("{}", format_pipeline_table(&pipeline_results));
        let latency_results: Vec<_> = adaptive_latency_specs(opts.quick)
            .iter()
            .map(|spec| {
                eprintln!(
                    "   running {} windows latency trickle ({} transactions)...",
                    if spec.adaptive { "adaptive" } else { "static" },
                    spec.total_transactions()
                );
                run_scaling(spec)
            })
            .collect();
        println!("=== Adaptive windows: uncontended trickle, static batch-4 vs adaptive (VVV) ===");
        println!("{}", format_pipeline_table(&latency_results));
    }
    if wants("routes") {
        let results = run_batch("routes", route_compare_specs(8, opts.quick));
        println!(
            "\n=== Commit routes: direct (client proposer) vs submitted (service-hosted \
             committer), contended workload, 8 writers, VVV ==="
        );
        println!("{}", format_route_table(&results));
        let (direct, submitted) = (&results[0], &results[1]);
        eprintln!(
            "submitted/direct committed-tx/s ratio: {:.2}",
            committed_tps(submitted) / committed_tps(direct).max(f64::EPSILON)
        );
        all_results.extend(results);
    }
    if wants("ablation") {
        let results = run_batch("ablation", ablation_specs(opts.quick));
        println!("\n=== Ablation: Paxos-CP mechanisms in isolation (VVV, paper workload) ===");
        println!("{}", format_commit_table(&results));
        println!("{}", format_latency_table(&results));
        all_results.extend(results);
    }

    // Open-loop runs in wall-clock time on real threads, so it is opted
    // into explicitly rather than folded into `all`.
    if opts.targets.iter().any(|t| t == "openloop") {
        let config = if opts.quick {
            OpenLoopSweepConfig::quick()
        } else {
            OpenLoopSweepConfig::full()
        };
        let mut ladders: Vec<(usize, Vec<OpenLoopResult>)> = Vec::new();
        for &workers in &config.worker_counts {
            eprintln!(
                "== open loop: {workers} worker(s), {} groups, zipfian theta {} ==",
                config.groups_per_worker * workers,
                config.theta
            );
            let results = run_openloop_ladder(&config, workers);
            println!(
                "\n=== Open loop: latency vs offered load, {workers} worker(s) ({} groups, {} on {}) ===",
                config.groups_per_worker * workers,
                format_args!("zipfian theta {}", config.theta),
                config.topology.name(),
            );
            println!("{}", format_openloop_table(&results));
            ladders.push((workers, results));
        }
        println!("=== Open loop summary (weak scaling: constant groups per worker) ===");
        println!("{}", format_openloop_summary(&ladders));
        let points: usize = ladders.iter().map(|(_, r)| r.len()).sum();
        let commits: usize = ladders
            .iter()
            .flat_map(|(_, r)| r.iter().map(|p| p.committed))
            .sum();
        eprintln!(
            "verified {points} open-loop points / {commits} committed transactions \
             (every point checker-verified)"
        );
        emit_openloop_snapshot(&ladders);
    }

    // Read-mostly scale-out sweep: like `openloop` it runs in wall-clock
    // time on real threads, so it is opted into explicitly.
    if opts.targets.iter().any(|t| t == "readmostly") {
        let config = if opts.quick {
            ReadMostlySweepConfig::quick()
        } else {
            ReadMostlySweepConfig::full()
        };
        eprintln!(
            "== read-mostly: serving {:?} of {} replicas, {} tx/s offered at {:.0}/{:.0} read/write, {} ==",
            config.serving_counts,
            config.topology.num_datacenters(),
            config.offered_tps,
            config.read_fraction * 100.0,
            (1.0 - config.read_fraction) * 100.0,
            config.topology.name(),
        );
        let results = run_readmostly_sweep(&config);
        println!(
            "\n=== Read-mostly: snapshot-read throughput vs serving replicas ({} workers, {}) ===",
            config.workers,
            config.topology.name(),
        );
        println!("{}", format_readmostly_table(&results));
        let reads: usize = results.iter().map(|r| r.reads_completed).sum();
        let verified: usize = results.iter().map(|r| r.reads_verified).sum();
        let unavailable: usize = results.iter().map(|r| r.reads_unavailable).sum();
        if let Some(ratio) = read_scaling(&results) {
            println!(
                "read scaling: {} serving replicas carry {ratio:.2}x the read throughput of {}",
                results.last().map(|r| r.serving_replicas).unwrap_or(0),
                results.first().map(|r| r.serving_replicas).unwrap_or(0),
            );
            if !opts.quick {
                assert!(
                    ratio >= 2.0,
                    "scale-out read plane must carry >= 2x read throughput at \
                     {} vs {} serving replicas (measured {ratio:.2}x)",
                    results.last().map(|r| r.serving_replicas).unwrap_or(0),
                    results.first().map(|r| r.serving_replicas).unwrap_or(0),
                );
            }
        }
        eprintln!(
            "verified {} read-mostly points / {reads} snapshot reads: every point \
             checker-verified, {verified} reads proven at their watermark, {unavailable} \
             unavailable (non-aborting read plane)",
            results.len()
        );
        emit_readmostly_snapshot(&results);
    }

    // The chaos scenario runs in simulated time but is a fault-tolerance
    // harness rather than a paper figure, so — like `openloop` — it is
    // opted into explicitly rather than folded into `all`.
    if opts.targets.iter().any(|t| t == "chaos") {
        let load = if opts.quick {
            simnet::SimDuration::from_secs(8)
        } else {
            simnet::SimDuration::from_secs(60)
        };
        let spec = ChaosRunSpec::rolling_failure(load);
        eprintln!(
            "== chaos: rolling failures over {}s of virtual time, {} drivers, {} tx/s offered ==",
            load.as_micros() / 1_000_000,
            spec.drivers,
            spec.offered_tps
        );
        let result = run_chaos(&spec);
        println!("\n=== Chaos: rolling leader crashes + flapping partition + home churn (VVV) ===");
        println!(
            "attempted {}  committed {}  aborted {}  unavailable {}",
            result.attempted, result.committed, result.aborted, result.unavailable
        );
        println!(
            "faults injected {}  resubmissions {}  duplicate suppressions {}",
            result.faults_injected, result.resubmissions, result.duplicate_suppressions
        );
        println!(
            "liveness: min {} commits per {}ms window ({} windows, all > 0)",
            result.min_window_commits,
            spec.liveness_window.as_micros() / 1_000,
            result.window_commits.len()
        );
        println!(
            "availability dip p99: {:.1} ms  resubmission rate: {:.3} per commit",
            result.availability_dip_p99_us as f64 / 1e3,
            result.resubmission_rate()
        );
        eprintln!(
            "verified chaos run: serializable, exactly-once, zero unavailable = {}",
            result.unavailable == 0
        );
        emit_chaos_snapshot(&result);
    }

    if let Some(path) = opts.json_path {
        std::fs::write(&path, results_to_json(&all_results)).expect("write json output");
        eprintln!("wrote {} results to {path}", all_results.len());
    }

    // Every experiment verified serializability before returning; summarize.
    let combined: usize = all_results.iter().map(|r| r.totals.combined_commits).sum();
    let total_txns: usize = all_results.iter().map(|r| r.attempted).sum();
    eprintln!(
        "\nverified {} experiments / {} transactions (one-copy serializability + replica agreement); {} combined commits",
        all_results.len(),
        total_txns,
        combined
    );
}
