//! Merge criterion-shim snapshot files into `BENCH_baseline.json`.
//!
//! The criterion shim and the `experiments -- openloop` harness *append*
//! a JSON array of result rows to `$BENCH_JSON` on every run, so after a
//! few bench invocations the file holds several concatenated arrays. This
//! tool parses that tolerant superset (any number of back-to-back arrays
//! of flat objects), deduplicates rows by `id` with the latest occurrence
//! winning, folds them into the baseline — existing ids keep their
//! position, new ids append at the end — and rewrites the baseline as one
//! canonical array.
//!
//! ```text
//! BENCH_JSON=/tmp/bench.json cargo bench -p bench-suite
//! cargo run -p bench-suite --bin bench_merge -- /tmp/bench.json
//! cargo run -p bench-suite --bin bench_merge            # uses $BENCH_JSON
//! cargo run -p bench-suite --bin bench_merge -- --baseline other.json snap.json
//! ```
//!
//! No JSON dependency: the parser below handles exactly the flat
//! string/number objects the shim emits (and preserves unknown fields).

use std::fmt::Write as _;

/// One parsed result row: ordered key/value pairs with raw value text
/// (strings keep their quotes), plus the extracted `id`.
#[derive(Clone, Debug)]
struct Row {
    id: String,
    fields: Vec<(String, String)>,
}

/// A character scanner over the snapshot text.
struct Scanner<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Scanner {
            text: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.text.len() && self.text[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.text.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                byte as char,
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    /// Parse a JSON string literal, returning it with quotes included.
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while self.pos < self.text.len() {
            match self.text[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    let inner = std::str::from_utf8(&self.text[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    self.pos += 1;
                    return Ok(format!("\"{inner}\""));
                }
                _ => self.pos += 1,
            }
        }
        Err(format!("unterminated string starting at byte {start}"))
    }

    /// Parse a bare scalar (number, true/false/null) as raw text.
    fn scalar(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.text.len()
            && !matches!(self.text[self.pos], b',' | b'}' | b']')
            && !self.text[self.pos].is_ascii_whitespace()
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a value at byte {start}"));
        }
        Ok(std::str::from_utf8(&self.text[start..self.pos])
            .map_err(|e| e.to_string())?
            .to_string())
    }

    /// Parse one flat `{...}` object into ordered key/value pairs.
    fn object(&mut self) -> Result<Row, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        let mut id = None;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Err("row object has no fields".to_string());
        }
        loop {
            let key_quoted = self.string()?;
            let key = key_quoted.trim_matches('"').to_string();
            self.expect(b':')?;
            let value = if self.peek() == Some(b'"') {
                self.string()?
            } else {
                self.scalar()?
            };
            if key == "id" {
                id = Some(value.trim_matches('"').to_string());
            }
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                other => return Err(format!("expected ',' or '}}' in row, found {other:?}")),
            }
        }
        let id = id.ok_or_else(|| "row object has no \"id\" field".to_string())?;
        Ok(Row { id, fields })
    }

    /// Parse every row from any number of concatenated `[...]` arrays.
    fn rows(&mut self) -> Result<Vec<Row>, String> {
        let mut rows = Vec::new();
        while let Some(b) = self.peek() {
            if b != b'[' {
                return Err(format!(
                    "expected '[' at byte {}, found '{}'",
                    self.pos, b as char
                ));
            }
            self.pos += 1;
            if self.peek() == Some(b']') {
                self.pos += 1;
                continue;
            }
            loop {
                rows.push(self.object()?);
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        break;
                    }
                    other => return Err(format!("expected ',' or ']' in array, found {other:?}")),
                }
            }
        }
        Ok(rows)
    }
}

fn parse_rows(text: &str) -> Result<Vec<Row>, String> {
    Scanner::new(text).rows()
}

/// Fold `updates` into `baseline`: latest occurrence of an id wins,
/// existing ids keep their baseline position, new ids append in first-seen
/// order.
fn merge(baseline: Vec<Row>, updates: Vec<Row>) -> Vec<Row> {
    let mut merged = baseline;
    for row in updates {
        if let Some(existing) = merged.iter_mut().find(|r| r.id == row.id) {
            *existing = row;
        } else {
            merged.push(row);
        }
    }
    merged
}

fn render(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str("  {");
        for (j, (key, value)) in row.fields.iter().enumerate() {
            let sep = if j + 1 == row.fields.len() { "" } else { ", " };
            let _ = write!(out, "\"{key}\": {value}{sep}");
        }
        let _ = writeln!(out, "}}{comma}");
    }
    out.push_str("]\n");
    out
}

fn main() {
    let mut baseline_path = "BENCH_baseline.json".to_string();
    let mut snapshots: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline_path = args.next().expect("--baseline needs a path");
            }
            other => snapshots.push(other.to_string()),
        }
    }
    if snapshots.is_empty() {
        match std::env::var("BENCH_JSON") {
            Ok(path) => snapshots.push(path),
            Err(_) => {
                eprintln!("usage: bench_merge [--baseline BENCH_baseline.json] <snapshot.json>...");
                eprintln!("       (with no snapshot arguments, $BENCH_JSON is used)");
                std::process::exit(2);
            }
        }
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_rows(&text)
            .unwrap_or_else(|e| panic!("failed to parse baseline {baseline_path}: {e}")),
        Err(_) => {
            eprintln!("baseline {baseline_path} not found, starting empty");
            Vec::new()
        }
    };
    let before = baseline.len();

    let mut merged = baseline;
    for snapshot in &snapshots {
        let text = std::fs::read_to_string(snapshot)
            .unwrap_or_else(|e| panic!("failed to read snapshot {snapshot}: {e}"));
        let rows = parse_rows(&text)
            .unwrap_or_else(|e| panic!("failed to parse snapshot {snapshot}: {e}"));
        eprintln!("{snapshot}: {} rows", rows.len());
        merged = merge(merged, rows);
    }

    std::fs::write(&baseline_path, render(&merged))
        .unwrap_or_else(|e| panic!("failed to write {baseline_path}: {e}"));
    eprintln!(
        "{baseline_path}: {} rows ({} before, {} updated/added)",
        merged.len(),
        before,
        merged.len() - before,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_concatenated_arrays_and_dedups_latest_wins() {
        let baseline = parse_rows(
            r#"[
  {"id": "a/x", "median_ns": 1.0, "mean_ns": 1.5, "iterations": 10},
  {"id": "a/y", "median_ns": 2.0, "mean_ns": 2.5, "iterations": 20}
]"#,
        )
        .unwrap();
        let snapshot = parse_rows(
            "[\n  {\"id\": \"a/y\", \"median_ns\": 9.0, \"mean_ns\": 9.5, \"iterations\": 90}\n]\n\
             [\n  {\"id\": \"b/z\", \"median_ns\": 3.0, \"mean_ns\": 3.5, \"iterations\": 30},\n\
             {\"id\": \"a/y\", \"median_ns\": 7.0, \"mean_ns\": 7.5, \"iterations\": 70}\n]\n",
        )
        .unwrap();
        assert_eq!(snapshot.len(), 3);
        let merged = merge(baseline, snapshot);
        assert_eq!(
            merged.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            vec!["a/x", "a/y", "b/z"],
        );
        // Latest a/y won.
        assert!(merged[1]
            .fields
            .iter()
            .any(|(k, v)| k == "median_ns" && v == "7.0"));
        let rendered = render(&merged);
        // Canonical output round-trips.
        let reparsed = parse_rows(&rendered).unwrap();
        assert_eq!(reparsed.len(), 3);
        assert_eq!(reparsed[2].id, "b/z");
    }

    #[test]
    fn empty_arrays_and_unknown_fields_are_tolerated() {
        let rows =
            parse_rows("[]\n[ {\"id\": \"q\", \"note\": \"hi, {braces}\", \"n\": 1} ]").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id, "q");
        let rendered = render(&rows);
        assert!(rendered.contains("\"note\": \"hi, {braces}\""));
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(parse_rows("not json").is_err());
        assert!(parse_rows("[ {\"no_id\": 1} ]").is_err());
    }
}
