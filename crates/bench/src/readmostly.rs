//! Read-mostly scale-out sweep: snapshot-read throughput vs serving
//! replicas.
//!
//! The sweep holds the offered 95/5 read/write mix constant and varies how
//! many datacenters serve snapshot reads (1 → all). With one serving
//! replica every read from another region pays a wide-area round trip and
//! the per-driver in-flight cap turns that latency into a throughput
//! ceiling; with a serving replica per region every read is local. The
//! headline is the aggregate completed-read throughput ratio between the
//! last and first point — the scale-out the non-aborting read plane buys —
//! plus the read p99 at each point. Every point is verified end to end:
//! the serializability checker passes, zero reads abort or return
//! unavailable, and every completed read is proven against the merged
//! decided log at its watermark.

use mdstore::Topology;
use std::time::Duration;
use workload::{run_readmostly, ReadMostlyResult, ReadMostlySpec};

/// Parameters of one read-mostly sweep (shared by every serving count).
#[derive(Clone, Debug)]
pub struct ReadMostlySweepConfig {
    /// Serving-replica counts to sweep (e.g. `[1, 2, 3]`).
    pub serving_counts: Vec<usize>,
    /// Worker threads (= shards).
    pub workers: usize,
    /// Transaction groups per worker.
    pub groups_per_worker: usize,
    /// Aggregate offered load (reads + writes) in tx/s, constant across
    /// the sweep.
    pub offered_tps: f64,
    /// Fraction of arrivals that are snapshot reads.
    pub read_fraction: f64,
    /// Per-driver in-flight read cap (what turns remote RTT into a
    /// throughput ceiling).
    pub max_open_reads: usize,
    /// Keyspace size.
    pub keys: u64,
    /// Zipfian skew of the key distribution.
    pub theta: f64,
    /// Wall-clock offered window per point.
    pub duration: Duration,
    /// Drain window after the offered window.
    pub grace: Duration,
    /// Per-request patience.
    pub patience: Duration,
    /// Cluster layout each shard replicates.
    pub topology: Topology,
    /// Latency scale on the topology RTTs.
    pub rtt_scale: f64,
    /// Base seed (each point perturbs it).
    pub seed: u64,
}

impl ReadMostlySweepConfig {
    /// The full sweep: serving 1/2/3 datacenters of the paper's VOC
    /// wide-area cluster at real RTTs, 2 workers × 4 groups, 4 000 tx/s
    /// offered at a 95/5 mix, 1.2 s of offered load per point. Remote
    /// reads pay the ≈90 ms Virginia↔west-coast RTT, so the single-serving
    /// point caps well below offered and the all-local point does not —
    /// read throughput is expected to scale ≥ 2× from 1 to 3.
    pub fn full() -> Self {
        ReadMostlySweepConfig {
            serving_counts: vec![1, 2, 3],
            workers: 2,
            groups_per_worker: 4,
            offered_tps: 4_000.0,
            read_fraction: 0.95,
            max_open_reads: 4,
            keys: 100_000,
            theta: 0.99,
            duration: Duration::from_millis(1_200),
            grace: Duration::from_millis(2_000),
            patience: Duration::from_millis(1_500),
            topology: Topology::voc(),
            rtt_scale: 1.0,
            seed: 42,
        }
    }

    /// A CI smoke sweep: serving 1 and 3 replicas of a scaled-down VVV
    /// cluster, 1 worker, short windows — finishes in a few seconds. VVV
    /// RTTs are all intra-region, so this exercises the protocol and the
    /// per-point proofs, not the wide-area scaling headline.
    pub fn quick() -> Self {
        ReadMostlySweepConfig {
            serving_counts: vec![1, 3],
            workers: 1,
            groups_per_worker: 4,
            offered_tps: 400.0,
            read_fraction: 0.95,
            max_open_reads: 4,
            keys: 20_000,
            theta: 0.99,
            duration: Duration::from_millis(300),
            grace: Duration::from_millis(700),
            patience: Duration::from_millis(600),
            topology: Topology::vvv(),
            rtt_scale: 0.5,
            seed: 42,
        }
    }

    /// The spec of one sweep point.
    pub fn point(&self, serving: usize, index: usize) -> ReadMostlySpec {
        ReadMostlySpec::new(self.workers, self.offered_tps, serving)
            .with_topology(self.topology.clone())
            .with_groups(self.groups_per_worker.max(1) * self.workers.max(1))
            .with_keys(self.keys)
            .with_read_fraction(self.read_fraction)
            .with_max_open_reads(self.max_open_reads)
            .with_windows(self.duration, self.grace, self.patience)
            .with_rtt_scale(self.rtt_scale)
            .with_seed(self.seed.wrapping_add(index as u64 * 97 + serving as u64))
    }
}

/// Run every point of the sweep, in serving-count order.
pub fn run_readmostly_sweep(config: &ReadMostlySweepConfig) -> Vec<ReadMostlyResult> {
    config
        .serving_counts
        .iter()
        .enumerate()
        .map(|(i, &serving)| run_readmostly(&config.point(serving, i)))
        .collect()
}

/// Read-throughput scaling of a sweep: last point's completed read tx/s
/// over the first point's (`None` on fewer than two points).
pub fn read_scaling(results: &[ReadMostlyResult]) -> Option<f64> {
    let first = results.first()?.read_tps;
    let last = results.last()?.read_tps;
    if results.len() < 2 {
        return None;
    }
    Some(last / first.max(1e-9))
}

/// Format a sweep as a serving-replicas vs read-throughput table.
pub fn format_readmostly_table(results: &[ReadMostlyResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "serving  read tx/s  read p50 ms  read p99 ms  shed  stale max  w commit  w p99 ms  sat\n",
    );
    for r in results {
        out.push_str(&format!(
            "{:>7} {:>10.1} {:>12.1} {:>12.1} {:>5} {:>10} {:>9} {:>9.1} {:>4}\n",
            r.serving_replicas,
            r.read_tps,
            r.read_latency.p50_ms,
            r.read_latency.p99_ms,
            r.reads_shed,
            r.max_staleness,
            r.write_committed,
            r.write_latency.p99_ms,
            if r.read_saturated { "yes" } else { "no" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdstore::LatencyStats;
    use workload::KeyDistribution;

    fn fake(serving: usize, read_tps: f64) -> ReadMostlyResult {
        ReadMostlyResult {
            offered_tps: 4_000.0,
            workers: 2,
            groups: 8,
            serving_replicas: serving,
            read_fraction: 0.95,
            write_attempted: 100,
            write_committed: 95,
            write_aborted: 5,
            write_timed_out: 0,
            write_latency: LatencyStats::default(),
            reads_completed: (read_tps * 1.2) as usize,
            reads_unavailable: 0,
            reads_shed: 0,
            read_latency: LatencyStats::default(),
            read_tps,
            max_staleness: 2,
            mean_staleness: 0.1,
            reads_verified: (read_tps * 1.2) as usize,
            read_saturated: false,
            checked_groups: 8,
            wall: Duration::from_millis(10),
        }
    }

    #[test]
    fn scaling_is_last_over_first() {
        let sweep = vec![fake(1, 1_000.0), fake(2, 2_000.0), fake(3, 2_600.0)];
        assert!((read_scaling(&sweep).unwrap() - 2.6).abs() < 1e-9);
        assert_eq!(read_scaling(&sweep[..1]), None);
        let table = format_readmostly_table(&sweep);
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn quick_config_is_small() {
        let config = ReadMostlySweepConfig::quick();
        assert!(config.serving_counts.len() <= 2);
        let spec = config.point(3, 1);
        assert_eq!(spec.workers, 1);
        assert_eq!(spec.serving_replicas, 3);
        assert_eq!(spec.groups, 4);
        assert!(matches!(
            spec.key_distribution,
            KeyDistribution::Zipfian { .. }
        ));
    }
}
