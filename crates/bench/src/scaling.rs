//! Sharded multi-group scaling workloads: sweep the number of transaction
//! groups, the batch size and the **commit-pipeline depth**, measuring
//! aggregate committed transactions/sec of simulated time and commit
//! latency percentiles.
//!
//! The paper's §2.1 data model partitions rows into transaction groups so
//! that independent groups commit in parallel; these workloads exercise
//! exactly that. A fixed pool of writers is sharded over `groups` groups,
//! each writer homed in its group's leader datacenter per the directory's
//! leader map. Writers drive the **submitted commit route**: every
//! finished transaction ships to the group home's Transaction Service as a
//! [`mdstore::Msg::CommitRequest`], and the *service-hosted*
//! [`mdstore::GroupCommitter`] (one per led group, shared by every writer
//! of the group) windows, pipelines and adapts — the same engine, wired
//! the same way, that real client sessions use.
//!
//! Three load shapes:
//!
//! * **closed loop** (default) — each writer submits one window's worth,
//!   waits for every outcome, then starts the next round: the group/batch
//!   sweeps of PR 2 (depth 1, static windows).
//! * **burst** ([`ScalingSpec::with_burst`]) — each writer submits its
//!   whole quota up front. Equal offered load across pipeline depths: the
//!   committer drains the backlog with up to `pipeline_depth` instances in
//!   flight, so the depth sweep isolates what pipelining buys.
//! * **trickle** ([`ScalingSpec::with_interarrival`]) — one transaction per
//!   interval per writer: the uncontended low-occupancy regime where the
//!   adaptive window controller should shrink to latency mode and beat a
//!   static window's deadline wait.
//!
//! Every run is verified (replica agreement + one-copy serializability per
//! group) before its numbers are reported.

use mdstore::{
    BatchConfig, Cluster, ClusterConfig, CommitProtocol, Msg, RunMetrics, Topology, TxnResult,
};
use parking_lot::Mutex;
use simnet::{Actor, Context, NodeId, SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;
use walog::{GroupId, ItemRef, Transaction, TxnId};

/// Reserved timer tag for "start the next submission round / next trickle".
const NEXT_ROUND_TAG: u64 = u64::MAX;

/// One point of a scaling sweep.
#[derive(Clone, Debug)]
pub struct ScalingSpec {
    /// Cluster layout.
    pub topology: Topology,
    /// Number of transaction groups the writers shard over.
    pub groups: usize,
    /// Total writers (round-robin over the groups).
    pub writers: usize,
    /// Submission rounds per writer (each round submits one full window;
    /// with burst or trickle, `rounds * batch_size` is the writer's quota).
    pub rounds: usize,
    /// Transactions per window (= the service committers' `max_batch`).
    pub batch_size: usize,
    /// Commit-pipeline depth of the service committers (1 =
    /// flush-and-wait).
    pub pipeline_depth: usize,
    /// Whether the committers' adaptive window controller is on.
    pub adaptive: bool,
    /// Submit each writer's whole quota up front (open loop).
    pub burst: bool,
    /// Trickle mode: one transaction per interval per writer.
    pub interarrival: Option<SimDuration>,
    /// Simulation seed.
    pub seed: u64,
}

impl ScalingSpec {
    /// A sweep point on the default three-Virginia cluster (closed loop,
    /// depth 1, static windows — the PR 2 configuration).
    pub fn new(groups: usize, batch_size: usize) -> Self {
        ScalingSpec {
            topology: Topology::vvv(),
            groups: groups.max(1),
            writers: 16,
            rounds: 4,
            batch_size: batch_size.max(1),
            pipeline_depth: 1,
            adaptive: false,
            burst: false,
            interarrival: None,
            seed: 42,
        }
    }

    /// Builder-style writer-count override.
    pub fn with_writers(mut self, writers: usize) -> Self {
        self.writers = writers.max(1);
        self
    }

    /// Builder-style rounds override.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds.max(1);
        self
    }

    /// Builder-style pipeline-depth override.
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Builder-style adaptive-window switch.
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Builder-style burst-mode switch (submit the whole quota up front).
    pub fn with_burst(mut self, burst: bool) -> Self {
        self.burst = burst;
        self
    }

    /// Builder-style trickle mode: one transaction per `gap` per writer.
    pub fn with_interarrival(mut self, gap: SimDuration) -> Self {
        self.interarrival = Some(gap);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total transactions the run will attempt.
    pub fn total_transactions(&self) -> usize {
        self.writers * self.rounds * self.batch_size
    }

    /// The service-committer configuration this sweep point runs with.
    pub fn batch_config(&self) -> BatchConfig {
        BatchConfig::default()
            .with_max_batch(self.batch_size)
            .with_pipeline_depth(self.pipeline_depth)
            .with_adaptive(self.adaptive)
    }
}

/// Measurements of one sweep point.
#[derive(Clone, Debug)]
pub struct ScalingResult {
    /// Number of groups the load was sharded over.
    pub groups: usize,
    /// Window size cap (`max_batch`).
    pub batch_size: usize,
    /// Configured commit-pipeline depth.
    pub pipeline_depth: usize,
    /// Whether adaptive windows were on.
    pub adaptive: bool,
    /// Transactions attempted.
    pub attempted: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted.
    pub aborted: usize,
    /// Decided non-noop log entries across all groups (replica 0): the
    /// number of Paxos instances that committed work.
    pub instances: usize,
    /// Committed transactions per Paxos instance (batching/combination
    /// amortization).
    pub txns_per_instance: f64,
    /// Mean transactions per flushed window (the controller's signal).
    pub mean_window_occupancy: f64,
    /// Deepest pipeline any committer reached.
    pub max_pipeline_depth: u32,
    /// Median commit latency in milliseconds of simulated time.
    pub commit_p50_ms: f64,
    /// Store versions reclaimed by the apply-time GC across replicas.
    pub reclaimed_versions: u64,
    /// Virtual time the run took, in seconds.
    pub sim_seconds: f64,
    /// Aggregate committed transactions per second of simulated time.
    pub throughput_tps: f64,
}

/// One writer, shipping blind-write transactions to its group home's
/// service-hosted committer via the submitted commit route, in one of the
/// three load shapes (closed loop, burst, trickle).
struct RouteWriter {
    directory: Arc<mdstore::Directory>,
    group: GroupId,
    /// The group home's Transaction Service node.
    service: NodeId,
    /// Replica index of the writer's (= the group home's) datacenter.
    home: usize,
    /// Items this writer's transactions write, cycled per submission.
    items: Vec<ItemRef>,
    /// Closed loop: windows still to submit.
    rounds_left: usize,
    /// Transactions still to submit (burst/trickle quota).
    quota: usize,
    burst: bool,
    interarrival: Option<SimDuration>,
    outstanding: usize,
    seq: u64,
    /// Submission time per outstanding request id.
    pending: HashMap<u64, SimTime>,
    metrics: Arc<Mutex<RunMetrics>>,
}

impl RouteWriter {
    fn submit_one(&mut self, ctx: &mut Context<Msg>) {
        let read_position = self
            .directory
            .core(self.home)
            .lock()
            .read_position(self.group);
        let node = ctx.node().0;
        self.seq += 1;
        let item = self.items[(self.seq as usize - 1) % self.items.len()];
        let txn = Transaction::builder(TxnId::new(node, self.seq), self.group, read_position)
            .write(item, format!("v{}-{}", node, self.seq))
            .build();
        self.outstanding += 1;
        self.pending.insert(self.seq, ctx.now());
        ctx.send(
            self.service,
            Msg::CommitRequest {
                req_id: self.seq,
                txn,
            },
        );
    }

    fn tick(&mut self, ctx: &mut Context<Msg>) {
        if self.interarrival.is_some() {
            // Trickle: one transaction per tick.
            if self.quota > 0 {
                self.quota -= 1;
                self.submit_one(ctx);
                if self.quota > 0 {
                    // lint:allow(timer-refire): bench driver, never crashed
                    ctx.set_timer(self.interarrival.unwrap(), NEXT_ROUND_TAG);
                }
            }
        } else if self.burst {
            // Burst: the whole quota up front; the service committer
            // pipelines it.
            while self.quota > 0 {
                self.quota -= 1;
                self.submit_one(ctx);
            }
        } else {
            // Closed loop: one window's worth per round.
            if self.rounds_left == 0 {
                return;
            }
            self.rounds_left -= 1;
            for _ in 0..self.items.len() {
                self.submit_one(ctx);
            }
        }
    }
}

impl Actor<Msg> for RouteWriter {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.tick(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
        let Msg::CommitReply {
            req_id,
            txn,
            committed,
            promotions,
            combined,
            rounds,
            abort_reason,
            ..
        } = msg
        else {
            return;
        };
        let Some(submitted_at) = self.pending.remove(&req_id) else {
            return;
        };
        let latency = ctx.now().since(submitted_at);
        {
            let mut metrics = self.metrics.lock();
            metrics.record(&TxnResult {
                committed,
                read_only: false,
                promotions,
                combined,
                rounds,
                latency,
                total_latency: latency,
                abort_reason,
                txn: Some(txn),
            });
            metrics.last_decision_us = metrics.last_decision_us.max(ctx.now().as_micros());
        }
        self.outstanding = self.outstanding.saturating_sub(1);
        if self.outstanding == 0
            && self.rounds_left > 0
            && !self.burst
            && self.interarrival.is_none()
        {
            ctx.set_timer(SimDuration::from_millis(1), NEXT_ROUND_TAG);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == NEXT_ROUND_TAG {
            self.tick(ctx);
        }
    }
}

/// Run one sweep point to completion, verify it, and measure it.
pub fn run_scaling(spec: &ScalingSpec) -> ScalingResult {
    let mut cluster = Cluster::build(
        ClusterConfig::new(spec.topology.clone(), CommitProtocol::PaxosCp)
            .with_batch(spec.batch_config())
            .with_seed(spec.seed),
    );
    let directory = cluster.directory();
    // Intern the group names first so their ids (and therefore their homes
    // in the leader map) are dense and round-robin over the datacenters.
    let groups: Vec<GroupId> = (0..spec.groups)
        .map(|g| directory.symbols().group(&format!("g{g}")))
        .collect();

    let mut sinks: Vec<Arc<Mutex<RunMetrics>>> = Vec::with_capacity(spec.writers);
    for w in 0..spec.writers {
        let group = groups[w % groups.len()];
        // Home each writer in its group's leader datacenter: the sharded
        // locality the leader map exists for, and one intra-site hop to the
        // service hosting the group's committer.
        let home = directory.group_home(group);
        let row = directory.symbols().key(&format!("row{w}"));
        let items: Vec<ItemRef> = (0..spec.batch_size)
            .map(|s| ItemRef::new(row, directory.symbols().attr(&format!("w{w}s{s}"))))
            .collect();
        let metrics = Arc::new(Mutex::new(RunMetrics::default()));
        sinks.push(metrics.clone());
        let dir = directory.clone();
        let service = cluster.service_node(home);
        let rounds = spec.rounds;
        let quota = spec.rounds * spec.batch_size;
        let burst = spec.burst;
        let interarrival = spec.interarrival;
        let sink = metrics;
        cluster.add_client(home, move |_node| {
            Box::new(RouteWriter {
                directory: dir,
                group,
                service,
                home,
                items,
                rounds_left: rounds,
                quota,
                burst,
                interarrival,
                outstanding: 0,
                seq: 0,
                pending: HashMap::new(),
                metrics: sink,
            })
        });
    }

    let started = cluster.now();
    cluster.run_to_completion();
    cluster
        .verify()
        .expect("scaling run produced a non-serializable or diverged history");

    let mut totals = RunMetrics::default();
    for sink in &sinks {
        totals.merge(&sink.lock());
    }
    // The windowing/pipelining observables live with the service-hosted
    // committers now.
    totals.merge(&cluster.service_commit_metrics());
    totals.reclaimed_versions = cluster.reclaimed_version_counts().iter().sum();
    let instances: usize = groups
        .iter()
        .map(|g| cluster.decided_instances_id(0, *g))
        .sum();
    // Measure the working span — start to the last commit/abort decision —
    // not the idle tail of trailing reply-timeout timers the run-until-idle
    // loop waits out.
    let worked = totals.last_decision_us.saturating_sub(started.as_micros());
    let sim_seconds = worked as f64 / 1_000_000.0;
    ScalingResult {
        groups: spec.groups,
        batch_size: spec.batch_size,
        pipeline_depth: spec.pipeline_depth,
        adaptive: spec.adaptive,
        attempted: totals.attempted,
        committed: totals.committed,
        aborted: totals.aborted,
        instances,
        txns_per_instance: if instances == 0 {
            0.0
        } else {
            totals.committed as f64 / instances as f64
        },
        mean_window_occupancy: totals.mean_window_occupancy(),
        max_pipeline_depth: totals.max_pipeline_depth(),
        commit_p50_ms: totals.commit_latency().p50_ms,
        reclaimed_versions: totals.reclaimed_versions,
        sim_seconds,
        throughput_tps: if sim_seconds > 0.0 {
            totals.committed as f64 / sim_seconds
        } else {
            0.0
        },
    }
}

/// The group-count sweep: the same writer pool sharded over 1, 4, 16 and
/// 64 groups (batch size 4; depth 1, static windows for PR 2
/// comparability).
pub fn group_sweep_specs(quick: bool) -> Vec<ScalingSpec> {
    [1usize, 4, 16, 64]
        .into_iter()
        .map(|groups| {
            ScalingSpec::new(groups, 4)
                .with_writers(64)
                .with_rounds(if quick { 1 } else { 2 })
                .with_seed(90 + groups as u64)
        })
        .collect()
}

/// The batch-size sweep: 4 groups, window sizes 1, 2, 4 and 8 (depth 1,
/// static windows for PR 2 comparability).
pub fn batch_sweep_specs(quick: bool) -> Vec<ScalingSpec> {
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|batch| {
            ScalingSpec::new(4, batch)
                .with_writers(16)
                .with_rounds(if quick { 2 } else { 4 })
                .with_seed(190 + batch as u64)
        })
        .collect()
}

/// The pipeline sweep: depth 1/2/4 × batch cap 1/4/8 at **equal offered
/// load** — every cell bursts the same per-writer quota up front, so the
/// depth axis isolates what overlapping instances buys at each window
/// size. 4 writers over 4 groups (one per group: uncontended logs).
pub fn pipeline_sweep_specs(quick: bool) -> Vec<ScalingSpec> {
    let quota = if quick { 8 } else { 16 };
    let mut specs = Vec::new();
    for depth in [1usize, 2, 4] {
        for cap in [1usize, 4, 8] {
            specs.push(
                ScalingSpec::new(4, cap)
                    .with_writers(4)
                    .with_rounds(quota / cap.max(1))
                    .with_pipeline_depth(depth)
                    .with_burst(true)
                    .with_seed(290 + (depth * 10 + cap) as u64),
            );
        }
    }
    specs
}

/// The adaptive-window latency pair: an uncontended trickle (one
/// transaction per 25 ms per writer, far below one full window) run with a
/// static batch-4 window versus the adaptive controller. The static window
/// pays the 5 ms window deadline on every commit; the adaptive controller
/// shrinks to latency mode and commits on submit.
pub fn adaptive_latency_specs(quick: bool) -> Vec<ScalingSpec> {
    let rounds = if quick { 2 } else { 8 };
    let base = |adaptive: bool| {
        ScalingSpec::new(4, 4)
            .with_writers(4)
            .with_rounds(rounds)
            .with_pipeline_depth(2)
            .with_interarrival(SimDuration::from_millis(25))
            .with_adaptive(adaptive)
            .with_seed(410)
    };
    vec![base(false), base(true)]
}

/// Format a sweep as an aligned text table.
pub fn format_scaling_table(results: &[ScalingResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "groups  batch  attempted  committed  aborted  instances  txns/inst  sim_s    agg tx/s\n",
    );
    for r in results {
        out.push_str(&format!(
            "{:>6}  {:>5}  {:>9}  {:>9}  {:>7}  {:>9}  {:>9.2}  {:>7.2}  {:>9.1}\n",
            r.groups,
            r.batch_size,
            r.attempted,
            r.committed,
            r.aborted,
            r.instances,
            r.txns_per_instance,
            r.sim_seconds,
            r.throughput_tps,
        ));
    }
    out
}

/// Format the pipeline sweep (and the adaptive-latency pair) as an aligned
/// text table with the pipeline/controller observables.
pub fn format_pipeline_table(results: &[ScalingResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "depth  batch  adapt  attempted  committed  occ(avg)  depth(max)  p50(ms)  sim_s    agg tx/s\n",
    );
    for r in results {
        out.push_str(&format!(
            "{:>5}  {:>5}  {:>5}  {:>9}  {:>9}  {:>8.2}  {:>10}  {:>7.2}  {:>7.2}  {:>9.1}\n",
            r.pipeline_depth,
            r.batch_size,
            if r.adaptive { "yes" } else { "no" },
            r.attempted,
            r.committed,
            r.mean_window_occupancy,
            r.max_pipeline_depth,
            r.commit_p50_ms,
            r.sim_seconds,
            r.throughput_tps,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scaling_run_commits_and_batches() {
        let spec = ScalingSpec::new(4, 4)
            .with_writers(4)
            .with_rounds(2)
            .with_seed(7);
        let result = run_scaling(&spec);
        assert_eq!(result.attempted, spec.total_transactions());
        assert_eq!(result.committed + result.aborted, result.attempted);
        assert!(result.committed > 0);
        // Windows of 4 independent transactions must amortize: at least two
        // committed transactions per Paxos instance on average.
        assert!(
            result.txns_per_instance >= 2.0,
            "batch amortization missing: {} txns / {} instances",
            result.committed,
            result.instances
        );
        assert!(result.throughput_tps > 0.0);
    }

    #[test]
    fn sweep_specs_cover_the_documented_points() {
        let groups: Vec<usize> = group_sweep_specs(true).iter().map(|s| s.groups).collect();
        assert_eq!(groups, vec![1, 4, 16, 64]);
        let batches: Vec<usize> = batch_sweep_specs(true)
            .iter()
            .map(|s| s.batch_size)
            .collect();
        assert_eq!(batches, vec![1, 2, 4, 8]);
        assert!(group_sweep_specs(false)[0].total_transactions() > 0);
        // Pipeline sweep: 3 depths × 3 caps, equal per-writer quota.
        let specs = pipeline_sweep_specs(false);
        assert_eq!(specs.len(), 9);
        assert!(specs
            .iter()
            .all(|s| s.rounds * s.batch_size == 16 && s.burst));
        let latency = adaptive_latency_specs(true);
        assert_eq!(latency.len(), 2);
        assert!(!latency[0].adaptive && latency[1].adaptive);
    }

    #[test]
    fn pipeline_depth_two_raises_throughput_at_equal_offered_load() {
        let base = ScalingSpec::new(2, 4)
            .with_writers(2)
            .with_rounds(4)
            .with_burst(true)
            .with_seed(33);
        let d1 = run_scaling(&base.clone().with_pipeline_depth(1));
        let d2 = run_scaling(&base.with_pipeline_depth(2));
        assert_eq!(d1.attempted, d2.attempted, "equal offered load");
        assert_eq!(d2.committed, d2.attempted, "pipelined burst must drain");
        assert!(d2.max_pipeline_depth >= 2, "depth 2 must actually overlap");
        assert!(
            d2.throughput_tps > d1.throughput_tps,
            "pipelining must raise throughput: depth1 {:.1} tx/s vs depth2 {:.1} tx/s",
            d1.throughput_tps,
            d2.throughput_tps
        );
    }

    #[test]
    fn adaptive_windows_cut_uncontended_p50_latency() {
        // Full-size specs: the controller needs a handful of low-occupancy
        // windows to shrink, so the quick pair's p50 still straddles them.
        let specs = adaptive_latency_specs(false);
        let fixed = run_scaling(&specs[0]);
        let adaptive = run_scaling(&specs[1]);
        assert_eq!(fixed.attempted, adaptive.attempted);
        assert!(
            adaptive.commit_p50_ms < fixed.commit_p50_ms,
            "adaptive windows must cut uncontended p50: static {:.2} ms vs adaptive {:.2} ms",
            fixed.commit_p50_ms,
            adaptive.commit_p50_ms
        );
    }
}
