//! Sharded multi-group scaling workload: sweep the number of transaction
//! groups and the batch size, measuring aggregate committed
//! transactions/sec of simulated time.
//!
//! The paper's §2.1 data model partitions rows into transaction groups so
//! that independent groups commit in parallel; this workload exercises
//! exactly that. A fixed pool of batching writers (each a
//! [`mdstore::GroupCommitter`] driving windows of independent
//! transactions) is sharded over `groups` groups, each writer homed in its
//! group's leader datacenter per the directory's leader map. With one
//! group every writer contends for the same log; with many groups the same
//! offered concurrency spreads over independent logs and commits in
//! parallel — aggregate throughput scales with group count. The batch-size
//! sweep holds the sharding fixed and varies the window size, measuring
//! committed transactions per Paxos instance (the round-trip
//! amortization).
//!
//! Every run is verified (replica agreement + one-copy serializability per
//! group) before its numbers are reported.

use mdstore::{
    BatchConfig, ClientAction, Cluster, ClusterConfig, CommitProtocol, GroupCommitter, Msg,
    RunMetrics, Topology,
};
use parking_lot::Mutex;
use simnet::{Actor, Context, NodeId, SimDuration};
use std::sync::Arc;
use walog::{GroupId, ItemRef, Transaction, TxnId};

/// Reserved timer tag for "start the next submission round".
const NEXT_ROUND_TAG: u64 = u64::MAX;

/// One point of the scaling sweep.
#[derive(Clone, Debug)]
pub struct ScalingSpec {
    /// Cluster layout.
    pub topology: Topology,
    /// Number of transaction groups the writers shard over.
    pub groups: usize,
    /// Total batching writers (round-robin over the groups).
    pub writers: usize,
    /// Submission rounds per writer (each round submits one full window).
    pub rounds: usize,
    /// Transactions per window (= the committer's `max_batch`).
    pub batch_size: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl ScalingSpec {
    /// A sweep point on the default three-Virginia cluster.
    pub fn new(groups: usize, batch_size: usize) -> Self {
        ScalingSpec {
            topology: Topology::vvv(),
            groups: groups.max(1),
            writers: 16,
            rounds: 4,
            batch_size: batch_size.max(1),
            seed: 42,
        }
    }

    /// Builder-style writer-count override.
    pub fn with_writers(mut self, writers: usize) -> Self {
        self.writers = writers.max(1);
        self
    }

    /// Builder-style rounds override.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds.max(1);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total transactions the run will attempt.
    pub fn total_transactions(&self) -> usize {
        self.writers * self.rounds * self.batch_size
    }
}

/// Measurements of one sweep point.
#[derive(Clone, Debug)]
pub struct ScalingResult {
    /// Number of groups the load was sharded over.
    pub groups: usize,
    /// Window size (`max_batch`).
    pub batch_size: usize,
    /// Transactions attempted.
    pub attempted: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted.
    pub aborted: usize,
    /// Decided non-noop log entries across all groups (replica 0): the
    /// number of Paxos instances that committed work.
    pub instances: usize,
    /// Committed transactions per Paxos instance (batching/combination
    /// amortization).
    pub txns_per_instance: f64,
    /// Virtual time the run took, in seconds.
    pub sim_seconds: f64,
    /// Aggregate committed transactions per second of simulated time.
    pub throughput_tps: f64,
}

/// One batching writer: submits `rounds` windows of `batch_size`
/// independent transactions (each touching its own attribute) to its
/// group's committer.
struct BatchWriter {
    committer: Option<GroupCommitter>,
    /// Items this writer's window sessions write, one per slot.
    items: Vec<ItemRef>,
    rounds_left: usize,
    outstanding: usize,
    seq: u64,
    metrics: Arc<Mutex<RunMetrics>>,
}

impl BatchWriter {
    fn apply(&mut self, ctx: &mut Context<Msg>, actions: Vec<ClientAction>) {
        for action in actions {
            match action {
                ClientAction::Send(to, msg) => ctx.send(to, msg),
                ClientAction::ArmTimer { delay, tag } => {
                    ctx.set_timer(delay, tag);
                }
                ClientAction::Finished(result) => {
                    self.metrics.lock().record(&result);
                    self.outstanding = self.outstanding.saturating_sub(1);
                    if self.outstanding == 0 && self.rounds_left > 0 {
                        ctx.set_timer(SimDuration::from_millis(1), NEXT_ROUND_TAG);
                    }
                }
            }
        }
    }

    fn start_round(&mut self, ctx: &mut Context<Msg>) {
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        let committer = self.committer.as_mut().unwrap();
        let group = committer.group();
        let read_position = committer.read_position();
        let node = ctx.node().0;
        let mut batch_actions = Vec::new();
        self.outstanding = self.items.len();
        for item in self.items.clone() {
            self.seq += 1;
            let txn = Transaction::builder(TxnId::new(node, self.seq), group, read_position)
                .write(item, format!("v{}-{}", node, self.seq))
                .build();
            let committer = self.committer.as_mut().unwrap();
            batch_actions.extend(committer.submit(ctx.now(), txn));
        }
        self.apply(ctx, batch_actions);
    }
}

impl Actor<Msg> for BatchWriter {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.start_round(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let committer = self.committer.as_mut().unwrap();
        let actions = committer.on_message(ctx.now(), from, &msg);
        self.apply(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == NEXT_ROUND_TAG {
            self.start_round(ctx);
        } else {
            let committer = self.committer.as_mut().unwrap();
            let actions = committer.on_timer(ctx.now(), tag);
            self.apply(ctx, actions);
        }
    }
}

/// Run one sweep point to completion, verify it, and measure it.
pub fn run_scaling(spec: &ScalingSpec) -> ScalingResult {
    let mut cluster = Cluster::build(
        ClusterConfig::new(spec.topology.clone(), CommitProtocol::PaxosCp).with_seed(spec.seed),
    );
    let directory = cluster.directory();
    // Intern the group names first so their ids (and therefore their homes
    // in the leader map) are dense and round-robin over the datacenters.
    let groups: Vec<GroupId> = (0..spec.groups)
        .map(|g| directory.symbols().group(&format!("g{g}")))
        .collect();

    let mut sinks: Vec<Arc<Mutex<RunMetrics>>> = Vec::with_capacity(spec.writers);
    for w in 0..spec.writers {
        let group = groups[w % groups.len()];
        // Home each writer in its group's leader datacenter: the sharded
        // locality the leader map exists for.
        let home = directory.group_home(group);
        let row = directory.symbols().key(&format!("row{w}"));
        let items: Vec<ItemRef> = (0..spec.batch_size)
            .map(|s| ItemRef::new(row, directory.symbols().attr(&format!("w{w}s{s}"))))
            .collect();
        let metrics = Arc::new(Mutex::new(RunMetrics::default()));
        sinks.push(metrics.clone());
        let mut client_config = cluster.client_config();
        client_config.max_promotions = None;
        let batch_config = BatchConfig::default().with_max_batch(spec.batch_size);
        let dir = directory.clone();
        let rounds = spec.rounds;
        let sink = metrics;
        cluster.add_client(home, move |node| {
            Box::new(BatchWriter {
                committer: Some(GroupCommitter::new(
                    node,
                    home,
                    group,
                    dir,
                    client_config,
                    batch_config,
                )),
                items,
                rounds_left: rounds,
                outstanding: 0,
                seq: 0,
                metrics: sink,
            })
        });
    }

    let started = cluster.now();
    cluster.run_to_completion();
    let duration = cluster.now() - started;
    cluster
        .verify()
        .expect("scaling run produced a non-serializable or diverged history");

    let mut totals = RunMetrics::default();
    for sink in &sinks {
        totals.merge(&sink.lock());
    }
    let instances: usize = groups
        .iter()
        .map(|g| cluster.decided_instances_id(0, *g))
        .sum();
    let sim_seconds = duration.as_micros() as f64 / 1_000_000.0;
    ScalingResult {
        groups: spec.groups,
        batch_size: spec.batch_size,
        attempted: totals.attempted,
        committed: totals.committed,
        aborted: totals.aborted,
        instances,
        txns_per_instance: if instances == 0 {
            0.0
        } else {
            totals.committed as f64 / instances as f64
        },
        sim_seconds,
        throughput_tps: if sim_seconds > 0.0 {
            totals.committed as f64 / sim_seconds
        } else {
            0.0
        },
    }
}

/// The group-count sweep: the same writer pool sharded over 1, 4, 16 and
/// 64 groups (batch size 4).
pub fn group_sweep_specs(quick: bool) -> Vec<ScalingSpec> {
    [1usize, 4, 16, 64]
        .into_iter()
        .map(|groups| {
            ScalingSpec::new(groups, 4)
                .with_writers(64)
                .with_rounds(if quick { 1 } else { 2 })
                .with_seed(90 + groups as u64)
        })
        .collect()
}

/// The batch-size sweep: 4 groups, window sizes 1, 2, 4 and 8.
pub fn batch_sweep_specs(quick: bool) -> Vec<ScalingSpec> {
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|batch| {
            ScalingSpec::new(4, batch)
                .with_writers(16)
                .with_rounds(if quick { 2 } else { 4 })
                .with_seed(190 + batch as u64)
        })
        .collect()
}

/// Format a sweep as an aligned text table.
pub fn format_scaling_table(results: &[ScalingResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "groups  batch  attempted  committed  aborted  instances  txns/inst  sim_s    agg tx/s\n",
    );
    for r in results {
        out.push_str(&format!(
            "{:>6}  {:>5}  {:>9}  {:>9}  {:>7}  {:>9}  {:>9.2}  {:>7.2}  {:>9.1}\n",
            r.groups,
            r.batch_size,
            r.attempted,
            r.committed,
            r.aborted,
            r.instances,
            r.txns_per_instance,
            r.sim_seconds,
            r.throughput_tps,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scaling_run_commits_and_batches() {
        let spec = ScalingSpec::new(4, 4)
            .with_writers(4)
            .with_rounds(2)
            .with_seed(7);
        let result = run_scaling(&spec);
        assert_eq!(result.attempted, spec.total_transactions());
        assert_eq!(result.committed + result.aborted, result.attempted);
        assert!(result.committed > 0);
        // Windows of 4 independent transactions must amortize: at least two
        // committed transactions per Paxos instance on average.
        assert!(
            result.txns_per_instance >= 2.0,
            "batch amortization missing: {} txns / {} instances",
            result.committed,
            result.instances
        );
        assert!(result.throughput_tps > 0.0);
    }

    #[test]
    fn sweep_specs_cover_the_documented_points() {
        let groups: Vec<usize> = group_sweep_specs(true).iter().map(|s| s.groups).collect();
        assert_eq!(groups, vec![1, 4, 16, 64]);
        let batches: Vec<usize> = batch_sweep_specs(true)
            .iter()
            .map(|s| s.batch_size)
            .collect();
        assert_eq!(batches, vec![1, 2, 4, 8]);
        assert!(group_sweep_specs(false)[0].total_transactions() > 0);
    }
}
