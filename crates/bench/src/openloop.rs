//! Open-loop latency-vs-throughput sweeps on the multi-threaded parallel
//! runtime.
//!
//! For each worker-thread count the sweep offers load on an auto-doubling
//! ladder — each rung doubles the offered tx/s — until the cluster
//! saturates (committed throughput falls below 90 % of offered, or
//! requests start timing out) or the rung cap is hit. Each point reports
//! commit latency percentiles measured from *scheduled arrival* (open
//! loop: no coordinated omission) and the committed throughput; the knee
//! is the last unsaturated rung.
//!
//! **Weak scaling.** The sweep holds *groups per worker* constant, so the
//! 1/2/4-worker points run 8/16/32 groups: each added worker brings a full
//! replica set with its own group commit pipelines, exactly how Spinnaker
//! scales by adding partitioned servers. Per-group capacity is bound by
//! wide-area commit latency (batch × pipeline-depth per instance RTT),
//! not CPU, so peak committed throughput scales with worker count even on
//! a small host — and on a multi-core host the worker threads additionally
//! run genuinely in parallel. Every point is verified by the
//! serializability checker before its numbers are reported.

use mdstore::{BatchConfig, LatencyStats, Topology};
use std::time::Duration;
use workload::{run_openloop, KeyDistribution, OpenLoopResult, OpenLoopSpec};

/// Parameters of one open-loop sweep (shared by every worker count).
#[derive(Clone, Debug)]
pub struct OpenLoopSweepConfig {
    /// Worker-thread counts to sweep.
    pub worker_counts: Vec<usize>,
    /// Transaction groups per worker (held constant — weak scaling).
    pub groups_per_worker: usize,
    /// First rung of the offered-load ladder, in tx/s per worker; rung
    /// `i` offers `base * workers * 2^i`.
    pub base_tps_per_worker: f64,
    /// Ladder length cap.
    pub max_rungs: usize,
    /// Keyspace size.
    pub keys: u64,
    /// Zipfian skew of the key distribution.
    pub theta: f64,
    /// Wall-clock offered window per rung.
    pub duration: Duration,
    /// Drain window after the offered window.
    pub grace: Duration,
    /// Per-request patience before a timeout abort.
    pub patience: Duration,
    /// Cluster layout each shard replicates.
    pub topology: Topology,
    /// Latency scale on the topology RTTs.
    pub rtt_scale: f64,
    /// Commit-engine window/pipeline settings.
    pub batch: BatchConfig,
    /// Base seed (each rung perturbs it).
    pub seed: u64,
}

impl OpenLoopSweepConfig {
    /// The full sweep: 1/2/4 workers, 8 groups per worker on the paper's
    /// VOC wide-area cluster at real RTTs, a million-key zipfian keyspace
    /// (`theta = 0.99`), 1.2 s of offered load per rung.
    ///
    /// Modest windows (batch 4, depth 1) keep per-group capacity bound by
    /// the wide-area commit latency — a few hundred tx/s per worker's 8
    /// groups — so the weak-scaling ceiling grows with worker count
    /// without the sweep degenerating into a host-CPU benchmark even on a
    /// small machine.
    pub fn full() -> Self {
        OpenLoopSweepConfig {
            worker_counts: vec![1, 2, 4],
            groups_per_worker: 8,
            base_tps_per_worker: 100.0,
            max_rungs: 5,
            keys: 1_000_000,
            theta: 0.99,
            duration: Duration::from_millis(1_200),
            grace: Duration::from_millis(2_000),
            patience: Duration::from_millis(1_500),
            topology: Topology::voc(),
            rtt_scale: 1.0,
            batch: BatchConfig::default()
                .with_max_batch(4)
                .with_pipeline_depth(1),
            seed: 42,
        }
    }

    /// A CI smoke sweep: 1/2 workers, shorter windows, a scaled-down VVV
    /// cluster and a two-rung ladder — finishes in a few seconds.
    pub fn quick() -> Self {
        OpenLoopSweepConfig {
            worker_counts: vec![1, 2],
            groups_per_worker: 4,
            base_tps_per_worker: 100.0,
            max_rungs: 2,
            keys: 50_000,
            theta: 0.99,
            duration: Duration::from_millis(300),
            grace: Duration::from_millis(700),
            patience: Duration::from_millis(600),
            topology: Topology::vvv(),
            rtt_scale: 0.5,
            batch: BatchConfig::default(),
            seed: 42,
        }
    }

    /// The spec of one sweep point.
    pub fn point(&self, workers: usize, offered_tps: f64, rung: usize) -> OpenLoopSpec {
        let workers = workers.max(1);
        OpenLoopSpec::new(workers, offered_tps)
            .with_groups(self.groups_per_worker.max(1) * workers)
            .with_drivers(2 * workers)
            .with_keys(self.keys)
            .with_key_distribution(KeyDistribution::Zipfian { theta: self.theta })
            .with_windows(self.duration, self.grace, self.patience)
            .with_topology(self.topology.clone())
            .with_rtt_scale(self.rtt_scale)
            .with_seed(self.seed.wrapping_add(rung as u64 * 101 + workers as u64))
    }
}

/// Run the offered-load ladder for one worker count: double the offered
/// rate each rung, stop one rung after saturation (the saturated point
/// anchors the right end of the latency-throughput curve).
pub fn run_openloop_ladder(config: &OpenLoopSweepConfig, workers: usize) -> Vec<OpenLoopResult> {
    let mut results = Vec::new();
    let mut offered = config.base_tps_per_worker * workers.max(1) as f64;
    for rung in 0..config.max_rungs.max(1) {
        let mut spec = config.point(workers, offered, rung);
        spec.batch = config.batch.clone();
        let result = run_openloop(&spec);
        let saturated = result.saturated;
        results.push(result);
        if saturated {
            break;
        }
        offered *= 2.0;
    }
    results
}

/// The knee of a ladder: the last unsaturated point (highest offered load
/// the cluster kept up with), if any rung was unsaturated.
pub fn knee(results: &[OpenLoopResult]) -> Option<&OpenLoopResult> {
    results.iter().rev().find(|r| !r.saturated)
}

/// Peak committed throughput over a ladder (tx/s).
pub fn peak_committed_tps(results: &[OpenLoopResult]) -> f64 {
    results.iter().map(|r| r.committed_tps).fold(0.0, f64::max)
}

/// Format one ladder as a latency-vs-throughput table.
pub fn format_openloop_table(results: &[OpenLoopResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "workers groups  offered tx/s  committed tx/s    p50 ms    p99 ms  commits   aborts timeouts  sat\n",
    );
    for r in results {
        let LatencyStats { p50_ms, p99_ms, .. } = r.latency;
        out.push_str(&format!(
            "{:>7} {:>6} {:>13.0} {:>15.1} {:>9.1} {:>9.1} {:>8} {:>8} {:>8} {:>4}\n",
            r.workers,
            r.groups,
            r.offered_tps,
            r.committed_tps,
            p50_ms,
            p99_ms,
            r.committed,
            r.aborted,
            r.timed_out,
            if r.saturated { "yes" } else { "no" },
        ));
    }
    out
}

/// Format the cross-worker summary: peak committed throughput and knee per
/// worker count, plus the scaling ratio of the last worker count over the
/// first.
pub fn format_openloop_summary(ladders: &[(usize, Vec<OpenLoopResult>)]) -> String {
    let mut out = String::new();
    out.push_str("workers  peak committed tx/s  knee offered tx/s  knee p99 ms\n");
    for (workers, results) in ladders {
        let peak = peak_committed_tps(results);
        match knee(results) {
            Some(k) => out.push_str(&format!(
                "{:>7} {:>20.1} {:>18.0} {:>12.1}\n",
                workers, peak, k.offered_tps, k.latency.p99_ms
            )),
            // Every rung saturated: there is no knee to report. Say so
            // instead of printing a degenerate (0, 0) row — on a host
            // with fewer cores than workers the first rung can already
            // be CPU-bound, and a silent zero knee reads as a protocol
            // regression (see docs/BENCHMARKS.md on the w4 row).
            None => out.push_str(&format!(
                "{:>7} {:>20.1} {:>18} {:>12}  saturated at every rung (no knee; host-bound?)\n",
                workers, peak, "-", "-"
            )),
        }
    }
    if let (Some(first), Some(last)) = (ladders.first(), ladders.last()) {
        if ladders.len() > 1 {
            let base = peak_committed_tps(&first.1).max(1e-9);
            let top = peak_committed_tps(&last.1);
            out.push_str(&format!(
                "scaling: {}w peak is {:.2}x the {}w peak (weak scaling, {} groups/worker)\n",
                last.0,
                top / base,
                first.0,
                results_groups_per_worker(ladders),
            ));
        }
    }
    out
}

fn results_groups_per_worker(ladders: &[(usize, Vec<OpenLoopResult>)]) -> usize {
    ladders
        .first()
        .and_then(|(w, results)| results.first().map(|r| r.groups / w.max(&1)))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(workers: usize, offered: f64, committed_tps: f64, saturated: bool) -> OpenLoopResult {
        OpenLoopResult {
            offered_tps: offered,
            workers,
            groups: 8 * workers,
            attempted: 100,
            committed: 90,
            aborted: 10,
            timed_out: 0,
            latency: LatencyStats::default(),
            committed_tps,
            saturated,
            mean_window_occupancy: 1.0,
            backpressure: 0,
            checked_groups: 8 * workers,
            wall: Duration::from_millis(10),
        }
    }

    #[test]
    fn knee_is_last_unsaturated_point() {
        let ladder = vec![
            fake(1, 100.0, 99.0, false),
            fake(1, 200.0, 198.0, false),
            fake(1, 400.0, 250.0, true),
        ];
        assert_eq!(knee(&ladder).unwrap().offered_tps, 200.0);
        assert!((peak_committed_tps(&ladder) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn tables_render_every_row() {
        let ladders = vec![
            (
                1,
                vec![fake(1, 100.0, 99.0, false), fake(1, 200.0, 150.0, true)],
            ),
            (
                2,
                vec![fake(2, 200.0, 199.0, false), fake(2, 400.0, 320.0, true)],
            ),
        ];
        let table = format_openloop_table(&ladders[0].1);
        assert_eq!(table.lines().count(), 3);
        let summary = format_openloop_summary(&ladders);
        assert!(summary.contains("2w peak is"));
        assert!(summary.contains("groups/worker"));
    }

    #[test]
    fn summary_reports_saturation_instead_of_a_zero_knee() {
        let ladders = vec![(4, vec![fake(4, 400.0, 250.0, true)])];
        let summary = format_openloop_summary(&ladders);
        assert!(
            summary.contains("saturated at every rung"),
            "a knee-less ladder must be called out explicitly: {summary}"
        );
        assert!(!summary.contains(" 0  "), "no degenerate zero knee");
    }

    #[test]
    fn quick_config_is_small() {
        let config = OpenLoopSweepConfig::quick();
        assert!(config.max_rungs <= 2);
        let spec = config.point(2, 200.0, 0);
        assert_eq!(spec.workers, 2);
        assert_eq!(spec.groups, 8);
        assert!(matches!(
            spec.key_distribution,
            KeyDistribution::Zipfian { .. }
        ));
    }
}
