//! One Criterion target per paper figure: each runs a scaled-down version of
//! the figure's workload end to end (cluster simulation, commit protocol,
//! serializability verification). The full-size runs that regenerate the
//! numbers in EXPERIMENTS.md live in the `experiments` binary; these bench
//! targets exist so `cargo bench` exercises every experiment path and tracks
//! the simulator's throughput over time.

use criterion::{criterion_group, criterion_main, Criterion};
use workload::{run_experiment, ExperimentSpec};

fn shrink(mut spec: ExperimentSpec) -> ExperimentSpec {
    // 2 clients × 15 transactions keeps each iteration around a million
    // simulated events or less, so the whole suite stays in benchmark
    // territory rather than experiment territory.
    spec = spec.with_clients(2, 15);
    spec.target_tps = 4.0;
    spec
}

fn bench_figure(c: &mut Criterion, figure: &str, specs: Vec<ExperimentSpec>) {
    let mut group = c.benchmark_group(figure);
    group.sample_size(10);
    for spec in specs {
        let spec = shrink(spec);
        group.bench_function(spec.name.clone(), |b| {
            b.iter(|| {
                let result = run_experiment(&spec);
                assert_eq!(result.attempted, spec.total_transactions());
                result.totals.committed
            });
        });
    }
    group.finish();
}

fn fig4(c: &mut Criterion) {
    // Benchmark the two extremes (2 and 5 replicas) for both protocols.
    let specs = bench_suite::fig4_specs(true)
        .into_iter()
        .filter(|s| s.name.contains("-VV-") || s.name.contains("VVVOC"))
        .collect();
    bench_figure(c, "fig4_replicas", specs);
}

fn fig5(c: &mut Criterion) {
    let specs = bench_suite::fig5_specs(true)
        .into_iter()
        .filter(|s| s.name.contains("-OV-") || s.name.contains("-COV-"))
        .collect();
    bench_figure(c, "fig5_datacenter_combinations", specs);
}

fn fig6(c: &mut Criterion) {
    let specs = bench_suite::fig6_specs(true)
        .into_iter()
        .filter(|s| s.name.contains("20attrs") || s.name.contains("500attrs"))
        .collect();
    bench_figure(c, "fig6_contention", specs);
}

fn fig7(c: &mut Criterion) {
    let specs = bench_suite::fig7_specs(true)
        .into_iter()
        .filter(|s| s.name.contains("8tps"))
        .collect();
    bench_figure(c, "fig7_concurrency", specs);
}

fn fig8(c: &mut Criterion) {
    bench_figure(c, "fig8_per_datacenter", bench_suite::fig8_specs(true));
}

fn ablation(c: &mut Criterion) {
    let specs = bench_suite::ablation_specs(true)
        .into_iter()
        .filter(|s| s.name.contains("no-combination") || s.name.contains("full-paxos-cp"))
        .collect();
    bench_figure(c, "ablation", specs);
}

criterion_group!(figures, fig4, fig5, fig6, fig7, fig8, ablation);
criterion_main!(figures);
