//! Commit-route snapshot bench: wall-clock of the contended 8-writer
//! workload (the `routes` acceptance experiment, quick-sized) under the
//! direct route versus the submitted route. One iteration = one full
//! verified experiment — build the cluster, run every transaction to a
//! decision, check serializability — so the per-iteration time is the
//! simulator cost of the whole workload, and the committed-tx/s relation
//! between the two rows tracks the simulated-time relation reported by
//! `experiments -- routes` (the submitted row also does strictly more
//! committing per iteration; see `docs/BENCHMARKS.md`).

use bench_suite::{committed_tps, route_spec};
use criterion::{criterion_group, criterion_main, Criterion};
use mdstore::CommitRoute;
use workload::run_experiment;

fn bench_commit_routes(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_routes");
    group.sample_size(10);
    for route in [CommitRoute::Direct, CommitRoute::Submitted] {
        group.bench_function(format!("contended_8writers/{}", route.name()), |b| {
            let spec = route_spec(route, 8, true);
            b.iter(|| {
                let result = run_experiment(&spec);
                assert!(result.totals.committed > 0);
                assert!(committed_tps(&result) > 0.0);
                result.totals.committed
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_commit_routes);
criterion_main!(benches);
