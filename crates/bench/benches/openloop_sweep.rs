//! Open-loop smoke points on the parallel runtime, as criterion rows.
//!
//! Unlike the simulated-time benches, these run in wall-clock time on real
//! worker threads, so the measured quantity is the wall time of one small
//! unsaturated open-loop point (fixed offered window + drain). The value
//! of the row is regression tracking of the runtime's fixed costs —
//! thread bring-up, channel routing, drain — not throughput (the
//! `experiments -- openloop` sweep measures that and snapshots
//! `openloop/*` rows directly).

use bench_suite::OpenLoopSweepConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::run_openloop;

fn openloop_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("openloop_sweep");
    group.sample_size(2);
    let config = OpenLoopSweepConfig::quick();
    for workers in [1usize, 2] {
        let offered = config.base_tps_per_worker * workers as f64;
        let spec = config.point(workers, offered, 0);
        group.bench_with_input(
            BenchmarkId::new("quick_point_wall", format!("w{workers}")),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let result = run_openloop(spec);
                    assert!(result.committed > 0);
                    result.committed
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, openloop_points);
criterion_main!(benches);
