//! Wall-clock view of the sharded multi-group scaling sweep.
//!
//! Each benchmark runs one full simulated workload: a fixed pool of
//! batching writers sharded over N groups (see `bench_suite::scaling`).
//! The measured wall time per run falls as the group count rises — with
//! one group every writer contends for the same log positions (promotion
//! retries burn both simulated time and real work), with many groups the
//! same load commits in parallel — so lower ns/iter here is higher
//! aggregate throughput. `BENCH_JSON` snapshots feed `BENCH_baseline.json`
//! and `docs/BENCHMARKS.md`.

use bench_suite::{run_scaling, ScalingSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_group_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_sweep");
    group.sample_size(5);
    for groups in [1usize, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("commit_256txns_groups", groups),
            &groups,
            |b, &groups| {
                let spec = ScalingSpec::new(groups, 4)
                    .with_writers(16)
                    .with_rounds(4)
                    .with_seed(7 + groups as u64);
                b.iter(|| {
                    let result = run_scaling(&spec);
                    assert!(result.committed > 0);
                    result.committed
                });
            },
        );
    }
    group.finish();
}

fn bench_batch_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_sweep");
    group.sample_size(5);
    for batch in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("commit_256txns_batch", batch),
            &batch,
            |b, &batch| {
                let spec = ScalingSpec::new(4, batch)
                    .with_writers(16)
                    .with_rounds(64 / batch.max(1) / 4)
                    .with_seed(17 + batch as u64);
                b.iter(|| {
                    let result = run_scaling(&spec);
                    assert!(result.committed > 0);
                    result.committed
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_group_sweep, bench_batch_sweep);
criterion_main!(benches);
