//! Wall-clock view of the pipelined commit engine.
//!
//! Each benchmark runs one full simulated burst workload at equal offered
//! load (every cell drains the same per-writer quota): depth 1/2/4 ×
//! batch cap 1/4/8. Wall time per run tracks simulated drain time, so
//! lower ns/iter at depth ≥ 2 versus depth 1 is the pipelining win —
//! overlapping instances at positions p, p+1 amortize the replication
//! round trips a flush-and-wait committer serializes. The
//! `adaptive_trickle` pair measures the latency side: an uncontended
//! trickle under a static batch-4 window versus the adaptive controller
//! (which shrinks to latency mode and commits on submit). `BENCH_JSON`
//! snapshots feed `BENCH_baseline.json` and `docs/BENCHMARKS.md`.

use bench_suite::{adaptive_latency_specs, pipeline_sweep_specs, run_scaling};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pipeline_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_sweep");
    group.sample_size(5);
    for spec in pipeline_sweep_specs(false) {
        let id = format!("depth{}_cap{}", spec.pipeline_depth, spec.batch_size);
        group.bench_with_input(BenchmarkId::new("burst64", id), &spec, |b, spec| {
            b.iter(|| {
                let result = run_scaling(spec);
                assert_eq!(result.committed, result.attempted);
                result.committed
            });
        });
    }
    group.finish();
}

fn bench_adaptive_trickle(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_trickle");
    group.sample_size(5);
    for spec in adaptive_latency_specs(true) {
        let name = if spec.adaptive { "adaptive" } else { "static" };
        group.bench_with_input(BenchmarkId::new("windows", name), &spec, |b, spec| {
            b.iter(|| {
                let result = run_scaling(spec);
                assert!(result.committed > 0);
                result.committed
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_sweep, bench_adaptive_trickle);
criterion_main!(benches);
