//! Micro-benchmarks of the building blocks: the multi-version store, the
//! acceptor's checkAndWrite-based state machine, the conflict check at the
//! heart of Paxos-CP (interned vs. the string-keyed representation it
//! replaced), the combination search, and a full uncontended commit through
//! the simulated VVV cluster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdstore::{Cluster, ClusterConfig, CommitProtocol, CommitRoute, Session, Topology};
use mvkv::{Attr, Key, MvKvStore, Row, Timestamp};
use paxos::{AcceptorStore, Ballot};
use simnet::SimTime;
use std::collections::BTreeSet;
use walog::combine::best_combination;
use walog::ident::{AttrId, GroupId, KeyId};
use walog::{ItemRef, LogEntry, LogPosition, Transaction, TxnId};

fn item(a: u32) -> ItemRef {
    ItemRef::new(KeyId(0), AttrId(a))
}

fn bench_mvkv(c: &mut Criterion) {
    let row_key = Key(0);
    let a = Attr(0);
    let next_bal = Attr(1);
    let mut group = c.benchmark_group("mvkv");
    group.bench_function("write_new_version", |b| {
        let store = MvKvStore::new();
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            store
                .write(
                    row_key,
                    Row::new().with(a, ts.to_string()),
                    Some(Timestamp(ts)),
                )
                .unwrap();
        });
    });
    group.bench_function("read_latest_of_1000_versions", |b| {
        let store = MvKvStore::new();
        for ts in 1..=1000 {
            store
                .write(
                    row_key,
                    Row::new().with(a, ts.to_string()),
                    Some(Timestamp(ts)),
                )
                .unwrap();
        }
        b.iter(|| store.read(row_key, Some(Timestamp(900))));
    });
    group.bench_function("check_and_write", |b| {
        let store = MvKvStore::new();
        store
            .write(row_key, Row::new().with(next_bal, "0"), None)
            .unwrap();
        let mut v = 0u64;
        b.iter(|| {
            let expected = v.to_string();
            v += 1;
            store.check_and_write(
                row_key,
                next_bal,
                Some(&expected),
                Row::new().with(next_bal, v.to_string()),
            )
        });
    });
    group.finish();
}

fn bench_acceptor(c: &mut Criterion) {
    let mut group = c.benchmark_group("acceptor");
    group.bench_function("prepare_accept_apply_cycle", |b| {
        let store = MvKvStore::new();
        let acceptor = AcceptorStore::new(&store);
        let entry = std::sync::Arc::new(LogEntry::single(
            Transaction::builder(TxnId::new(1, 1), GroupId(0), LogPosition(0))
                .write(item(0), "v")
                .build(),
        ));
        let mut position = 0u64;
        b.iter(|| {
            position += 1;
            let pos = LogPosition(position);
            let ballot = Ballot::initial(7);
            let g = GroupId(0);
            acceptor.handle_prepare(g, pos, ballot);
            acceptor.handle_accept(g, pos, ballot, &entry);
            acceptor.handle_apply(g, pos, ballot, &entry);
        });
    });
    group.finish();
}

// ---------------------------------------------------------------------------
// Conflict check: interned integer sets vs. the string-keyed representation
// this refactor replaced. The string variant reproduces the seed
// implementation faithfully: owned `String` key/attr pairs and a
// `BTreeSet<&(String, String)>` built per check.
// ---------------------------------------------------------------------------

struct StringTxn {
    reads: Vec<(String, String)>,
    writes: Vec<(String, String)>,
}

impl StringTxn {
    fn write_set(&self) -> BTreeSet<&(String, String)> {
        self.writes.iter().collect()
    }

    fn reads_item_written_by(&self, other: &StringTxn) -> bool {
        let writes = other.write_set();
        self.reads.iter().any(|r| writes.contains(r))
    }
}

/// Build the paper's workload shape both ways: 10-operation transactions
/// (5 reads, 5 writes) over a 100-attribute row, with the probe reading a
/// sliding window so both hit and miss paths are exercised.
fn conflict_fixture(n: usize) -> (Vec<StringTxn>, Vec<Transaction>) {
    let mut string_txns = Vec::with_capacity(n);
    let mut interned_txns = Vec::with_capacity(n);
    for i in 0..n {
        let reads: Vec<u32> = (0..5).map(|j| ((i * 7 + j * 13) % 100) as u32).collect();
        let writes: Vec<u32> = (0..5).map(|j| ((i * 11 + j * 17) % 100) as u32).collect();
        string_txns.push(StringTxn {
            reads: reads
                .iter()
                .map(|a| ("row0".to_string(), format!("a{a}")))
                .collect(),
            writes: writes
                .iter()
                .map(|a| ("row0".to_string(), format!("a{a}")))
                .collect(),
        });
        let mut b = Transaction::builder(TxnId::new(i as u32, 1), GroupId(0), LogPosition(0));
        for r in &reads {
            b = b.read(item(*r), Some("v"));
        }
        for w in &writes {
            b = b.write(item(*w), "x");
        }
        interned_txns.push(b.build());
    }
    (string_txns, interned_txns)
}

fn bench_conflict_check(c: &mut Criterion) {
    let (string_txns, interned_txns) = conflict_fixture(64);
    let interned_entries: Vec<LogEntry> = interned_txns
        .iter()
        .map(|t| LogEntry::single(t.clone()))
        .collect();
    let mut group = c.benchmark_group("conflict_check");
    // The promotion test: does a winning entry invalidate our reads?
    group.bench_function("string_keyed_baseline", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % string_txns.len();
            let j = (i * 31 + 7) % string_txns.len();
            string_txns[i].reads_item_written_by(&string_txns[j])
        });
    });
    group.bench_function("interned", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % interned_txns.len();
            let j = (i * 31 + 7) % interned_txns.len();
            interned_entries[j].invalidates_reads_of(&interned_txns[i])
        });
    });
    // Pairwise sweep, the shape the combination validity check runs.
    group.bench_function("string_keyed_pairwise_64", |b| {
        b.iter(|| {
            let mut conflicts = 0usize;
            for a in &string_txns {
                for other in &string_txns {
                    if a.reads_item_written_by(other) {
                        conflicts += 1;
                    }
                }
            }
            conflicts
        });
    });
    group.bench_function("interned_pairwise_64", |b| {
        b.iter(|| {
            let mut conflicts = 0usize;
            for a in &interned_txns {
                for other in &interned_txns {
                    if a.reads_item_written_by(other) {
                        conflicts += 1;
                    }
                }
            }
            conflicts
        });
    });
    group.finish();
}

fn bench_combination(c: &mut Criterion) {
    let mut group = c.benchmark_group("combination");
    for candidates in [2usize, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("best_combination", candidates),
            &candidates,
            |b, &n| {
                let own = Transaction::builder(TxnId::new(0, 0), GroupId(0), LogPosition(0))
                    .read(item(0), Some("v"))
                    .write(item(0), "x")
                    .build();
                let pool: Vec<Transaction> = (1..=n)
                    .map(|i| {
                        Transaction::builder(
                            TxnId::new(i as u32, i as u64),
                            GroupId(0),
                            LogPosition(0),
                        )
                        .read(item((i % 5) as u32), Some("v"))
                        .write(item(((i + 1) % 5) as u32), "x")
                        .build()
                    })
                    .collect();
                b.iter(|| best_combination(&own, &pool));
            },
        );
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("entry_codec");
    let entry = LogEntry::combined(
        (0..3)
            .map(|i| {
                let mut b = Transaction::builder(TxnId::new(i, 1), GroupId(0), LogPosition(0));
                for j in 0..5 {
                    b = b.read(item(i * 10 + j), Some("observed-value"));
                    b = b.write(item(i * 10 + j + 5), "written-value");
                }
                b.build()
            })
            .collect(),
    );
    let encoded = entry.encode();
    group.bench_function("encode_3txn_entry", |b| b.iter(|| entry.encode()));
    group.bench_function("decode_3txn_entry", |b| {
        b.iter(|| LogEntry::decode(&encoded).expect("valid"))
    });
    group.finish();
}

/// A single uncontended read/write transaction committed through the
/// simulated three-replica Virginia cluster, including all message rounds.
/// Drives the session's direct route (the paper's client-side proposer) or
/// the submitted route (service-hosted group committer).
fn one_shot_commit(protocol: CommitProtocol, route: CommitRoute) {
    use mdstore::{ClientAction, Msg};
    use simnet::{Actor, Context, NodeId};
    struct OneShot {
        session: Option<Session>,
    }
    impl OneShot {
        fn apply(&mut self, ctx: &mut Context<Msg>, actions: Vec<ClientAction>) {
            for action in actions {
                match action {
                    ClientAction::Send(to, msg) => ctx.send(to, msg),
                    ClientAction::ArmTimer { delay, tag } => {
                        ctx.set_timer(delay, tag);
                    }
                    ClientAction::Finished(result) => assert!(result.committed),
                }
            }
        }
    }
    impl Actor<Msg> for OneShot {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            let session = self.session.as_mut().unwrap();
            let h = session.begin(ctx.now(), "g");
            session.write(h, "row", "a", "1").unwrap();
            let actions = session.commit(ctx.now(), h).unwrap();
            self.apply(ctx, actions);
        }
        fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
            let session = self.session.as_mut().unwrap();
            let actions = session.on_message(ctx.now(), from, &msg);
            self.apply(ctx, actions);
        }
        fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
            let session = self.session.as_mut().unwrap();
            let actions = session.on_timer(ctx.now(), tag);
            self.apply(ctx, actions);
        }
    }
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::vvv(), protocol).with_seed(1));
    let directory = cluster.directory();
    let client_config = cluster.client_config().with_route(route);
    cluster.add_client(0, |node| {
        Box::new(OneShot {
            session: Some(Session::new(node, 0, directory, client_config)),
        })
    });
    cluster.run_to_completion();
    assert_eq!(cluster.committed_in_log(0, "g"), 1);
}

fn bench_end_to_end_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_commit");
    group.sample_size(20);
    for protocol in [CommitProtocol::BasicPaxos, CommitProtocol::PaxosCp] {
        group.bench_function(protocol.name(), |b| {
            b.iter(|| {
                one_shot_commit(protocol, CommitRoute::Direct);
                SimTime::ZERO
            });
        });
    }
    // The submitted route on the same workload: one extra intra-site hop to
    // the group home's hosted committer, windowing deferred to the adaptive
    // controller.
    group.bench_function("paxos-cp-submitted", |b| {
        b.iter(|| {
            one_shot_commit(CommitProtocol::PaxosCp, CommitRoute::Submitted);
            SimTime::ZERO
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mvkv,
    bench_acceptor,
    bench_conflict_check,
    bench_combination,
    bench_codec,
    bench_end_to_end_commit
);
criterion_main!(benches);
