//! Micro-benchmarks of the building blocks: the multi-version store, the
//! acceptor's checkAndWrite-based state machine, the combination search, and
//! a full uncontended commit through the simulated VVV cluster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdstore::{Cluster, ClusterConfig, CommitProtocol, Topology, TransactionClient};
use mvkv::{MvKvStore, Row, Timestamp};
use paxos::{AcceptorStore, Ballot};
use simnet::SimTime;
use walog::combine::best_combination;
use walog::{ItemRef, LogEntry, LogPosition, Transaction, TxnId};

fn bench_mvkv(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvkv");
    group.bench_function("write_new_version", |b| {
        let store = MvKvStore::new();
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            store
                .write("row", Row::new().with("a", ts.to_string()), Some(Timestamp(ts)))
                .unwrap();
        });
    });
    group.bench_function("read_latest_of_1000_versions", |b| {
        let store = MvKvStore::new();
        for ts in 1..=1000 {
            store
                .write("row", Row::new().with("a", ts.to_string()), Some(Timestamp(ts)))
                .unwrap();
        }
        b.iter(|| store.read("row", Some(Timestamp(900))));
    });
    group.bench_function("check_and_write", |b| {
        let store = MvKvStore::new();
        store.write("row", Row::new().with("nextBal", "0"), None).unwrap();
        let mut v = 0u64;
        b.iter(|| {
            let expected = v.to_string();
            v += 1;
            store.check_and_write(
                "row",
                "nextBal",
                Some(&expected),
                Row::new().with("nextBal", v.to_string()),
            )
        });
    });
    group.finish();
}

fn bench_acceptor(c: &mut Criterion) {
    let mut group = c.benchmark_group("acceptor");
    group.bench_function("prepare_accept_apply_cycle", |b| {
        let store = MvKvStore::new();
        let acceptor = AcceptorStore::new(&store);
        let entry = LogEntry::single(
            Transaction::builder(TxnId::new(1, 1), "g", LogPosition(0))
                .write(ItemRef::new("row", "a"), "v")
                .build(),
        );
        let mut position = 0u64;
        b.iter(|| {
            position += 1;
            let pos = LogPosition(position);
            let ballot = Ballot::initial(7);
            let group = "g".to_string();
            acceptor.handle_prepare(&group, pos, ballot);
            acceptor.handle_accept(&group, pos, ballot, &entry);
            acceptor.handle_apply(&group, pos, ballot, &entry);
        });
    });
    group.finish();
}

fn bench_combination(c: &mut Criterion) {
    let mut group = c.benchmark_group("combination");
    for candidates in [2usize, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("best_combination", candidates),
            &candidates,
            |b, &n| {
                let own = Transaction::builder(TxnId::new(0, 0), "g", LogPosition(0))
                    .read(ItemRef::new("row", "a0"), Some("v"))
                    .write(ItemRef::new("row", "a0"), "x")
                    .build();
                let pool: Vec<Transaction> = (1..=n)
                    .map(|i| {
                        Transaction::builder(TxnId::new(i as u32, i as u64), "g", LogPosition(0))
                            .read(ItemRef::new("row", format!("a{}", i % 5)), Some("v"))
                            .write(ItemRef::new("row", format!("a{}", (i + 1) % 5)), "x")
                            .build()
                    })
                    .collect();
                b.iter(|| best_combination(&own, &pool));
            },
        );
    }
    group.finish();
}

/// A full uncontended read/write transaction committed through the simulated
/// three-replica Virginia cluster, including all message rounds.
fn bench_end_to_end_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_commit");
    group.sample_size(20);
    for protocol in [CommitProtocol::BasicPaxos, CommitProtocol::PaxosCp] {
        group.bench_function(protocol.name(), |b| {
            b.iter(|| {
                let mut cluster =
                    Cluster::build(ClusterConfig::new(Topology::vvv(), protocol).with_seed(1));
                let directory = cluster.directory();
                // Drive a single client synchronously by pumping the
                // simulation between client actions.
                struct OneShot {
                    client: Option<TransactionClient>,
                }
                use mdstore::{ClientAction, Msg};
                use simnet::{Actor, Context, NodeId};
                impl Actor<Msg> for OneShot {
                    fn on_start(&mut self, ctx: &mut Context<Msg>) {
                        let client = self.client.as_mut().unwrap();
                        client.begin(ctx.now(), "g").unwrap();
                        client.write("row", "a", "1").unwrap();
                        for action in client.commit(ctx.now()).unwrap() {
                            match action {
                                ClientAction::Send(to, msg) => ctx.send(to, msg),
                                ClientAction::ArmTimer { delay, tag } => {
                                    ctx.set_timer(delay, tag);
                                }
                                ClientAction::Finished(_) => {}
                            }
                        }
                    }
                    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
                        let client = self.client.as_mut().unwrap();
                        for action in client.on_message(ctx.now(), from, &msg) {
                            match action {
                                ClientAction::Send(to, msg) => ctx.send(to, msg),
                                ClientAction::ArmTimer { delay, tag } => {
                                    ctx.set_timer(delay, tag);
                                }
                                ClientAction::Finished(result) => assert!(result.committed),
                            }
                        }
                    }
                    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
                        let client = self.client.as_mut().unwrap();
                        for action in client.on_timer(ctx.now(), tag) {
                            match action {
                                ClientAction::Send(to, msg) => ctx.send(to, msg),
                                ClientAction::ArmTimer { delay, tag } => {
                                    ctx.set_timer(delay, tag);
                                }
                                ClientAction::Finished(result) => assert!(result.committed),
                            }
                        }
                    }
                }
                let client_config = cluster.client_config();
                cluster.add_client(0, |node| {
                    Box::new(OneShot {
                        client: Some(TransactionClient::new(node, 0, directory, client_config)),
                    })
                });
                cluster.run_to_completion();
                assert_eq!(cluster.committed_in_log(0, "g"), 1);
                SimTime::ZERO
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mvkv,
    bench_acceptor,
    bench_combination,
    bench_end_to_end_commit
);
criterion_main!(benches);
