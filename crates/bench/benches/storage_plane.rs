//! Micro-benchmarks of the durable storage plane: WAL append plus
//! group-commit throughput, replay of a populated WAL directory (the
//! restart slow path), and group-snapshot save/load (the restart fast
//! path). Fixtures live in scratch directories that are removed when each
//! benchmark group finishes.

use criterion::{criterion_group, criterion_main, Criterion};
use storage::snapshot::{GroupSnapshot, SnapshotRow, SnapshotStore};
use storage::wal::{self, Wal, WalRecord};
use walog::{GroupId, LogPosition, TxnId};

fn promise(position: u64) -> WalRecord {
    WalRecord::Promise {
        group: GroupId(0),
        position: LogPosition(position),
        ballot: paxos::Ballot::initial(1),
    }
}

/// Append-and-sync throughput of the group-commit WAL: one iteration is a
/// 64-record batch followed by a single `sync`, the shape one loaded
/// datacenter timer tick produces.
fn bench_wal_append(c: &mut Criterion) {
    let dir = storage::scratch_dir("bench-wal-append");
    let mut group = c.benchmark_group("storage");
    group.sample_size(20);
    group.unit("ns_per_64_record_group_commit");
    let mut w = Wal::open(&dir, 8 << 20).expect("open wal");
    let mut position = 0u64;
    group.bench_function("wal_append_throughput", |b| {
        b.iter(|| {
            for _ in 0..64 {
                position += 1;
                w.append(&promise(position));
            }
            w.sync().expect("sync")
        });
    });
    group.finish();
    drop(w);
    storage::remove_scratch_dir(&dir);
}

/// Replay of a 4096-record WAL spread over several segments — the restart
/// cost paid for the log tail above the last snapshot.
fn bench_recovery_replay(c: &mut Criterion) {
    let dir = storage::scratch_dir("bench-wal-replay");
    let mut w = Wal::open(&dir, 64 << 10).expect("open wal");
    for p in 1..=4096u64 {
        w.append(&promise(p));
    }
    w.sync().expect("sync");
    drop(w);
    let mut group = c.benchmark_group("storage");
    group.sample_size(20);
    group.unit("ns_per_4096_record_replay");
    group.bench_function("recovery_replay_ms", |b| {
        b.iter(|| {
            let replay = wal::replay(&dir).expect("replay");
            assert_eq!(replay.records.len(), 4096);
            replay
        });
    });
    group.finish();
    storage::remove_scratch_dir(&dir);
}

/// Save-then-load of a group snapshot holding 256 rows with four retained
/// versions each — the restart fast path that replaces replaying the
/// truncated log prefix.
fn bench_snapshot_install(c: &mut Criterion) {
    let dir = storage::scratch_dir("bench-snapshot");
    let store = SnapshotStore::open(&dir).expect("open snapshot store");
    let snap = GroupSnapshot {
        group: GroupId(0),
        position: LogPosition(1024),
        log_base: LogPosition(1000),
        committed: (0..1024).map(|s| TxnId::new(1, s)).collect(),
        rows: (0..256u64)
            .map(|key| SnapshotRow {
                key,
                versions: (1..=4)
                    .map(|ts| (1020 + ts, vec![(0, format!("value-{key}-{ts}"))]))
                    .collect(),
            })
            .collect(),
    };
    let mut group = c.benchmark_group("storage");
    group.sample_size(20);
    group.unit("ns_per_256_row_save_load");
    group.bench_function("snapshot_install_ms", |b| {
        b.iter(|| {
            store.save(&snap).expect("save snapshot");
            let (loaded, corrupt) = store.load_all().expect("load snapshots");
            assert_eq!(corrupt, 0);
            assert_eq!(loaded.len(), 1);
            loaded
        });
    });
    group.finish();
    storage::remove_scratch_dir(&dir);
}

criterion_group!(
    benches,
    bench_wal_append,
    bench_recovery_replay,
    bench_snapshot_install
);
criterion_main!(benches);
