//! Property-based tests for the multi-version store.
//!
//! The key invariant used by the transaction tier is snapshot stability:
//! once a read at timestamp `t` has returned a value, later writes (which
//! must carry strictly larger timestamps) never change what a read at `t`
//! returns. Correctness of the read position mechanism (A2) rests on this.

use mvkv::{Attr, Key, MvKvStore, Row, Timestamp};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Write { key: u8, attr: u8, value: u16 },
    Read { key: u8, at: Option<u64> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u8..4, any::<u16>()).prop_map(|(key, attr, value)| Op::Write {
            key,
            attr,
            value
        }),
        (0u8..4, proptest::option::of(0u64..40)).prop_map(|(key, at)| Op::Read { key, at }),
    ]
}

/// One modelled version: its timestamp and full attribute map.
type ModelVersion = (u64, BTreeMap<u8, u16>);

/// A naive reference model: for each key, the full list of versions in write
/// order.
#[derive(Default)]
struct Model {
    versions: BTreeMap<u8, Vec<ModelVersion>>,
}

impl Model {
    fn write(&mut self, key: u8, attr: u8, value: u16) -> u64 {
        let versions = self.versions.entry(key).or_default();
        let mut merged = versions.last().map(|(_, m)| m.clone()).unwrap_or_default();
        merged.insert(attr, value);
        let ts = versions.last().map(|(t, _)| t + 1).unwrap_or(1);
        versions.push((ts, merged));
        ts
    }

    fn read(&self, key: u8, at: Option<u64>) -> Option<(u64, BTreeMap<u8, u16>)> {
        let versions = self.versions.get(&key)?;
        match at {
            None => versions.last().cloned(),
            Some(t) => versions.iter().rev().find(|(ts, _)| *ts <= t).cloned(),
        }
    }
}

fn to_row(map: &BTreeMap<u8, u16>) -> Row {
    Row::from_pairs(map.iter().map(|(a, v)| (Attr(*a as u32), v.to_string())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The store agrees with a simple single-threaded reference model for
    /// arbitrary interleavings of merge-writes and timestamped reads.
    #[test]
    fn store_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let store = MvKvStore::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Write { key, attr, value } => {
                    let expected_ts = model.write(key, attr, value);
                    let got = store
                        .write(Key(key as u64), Row::new().with(Attr(attr as u32), value.to_string()), None)
                        .unwrap();
                    prop_assert_eq!(got, Timestamp(expected_ts));
                }
                Op::Read { key, at } => {
                    let expected = model.read(key, at);
                    let got = store.read(Key(key as u64), at.map(Timestamp));
                    match (expected, got) {
                        (None, None) => {}
                        (Some((ts, map)), Some(read)) => {
                            prop_assert_eq!(read.timestamp, Timestamp(ts));
                            prop_assert_eq!(read.row, to_row(&map));
                        }
                        (e, g) => prop_assert!(false, "model {:?} vs store {:?}", e, g.map(|v| v.timestamp)),
                    }
                }
            }
        }
    }

    /// Snapshot stability: a read at a fixed timestamp returns the same value
    /// before and after any sequence of later writes.
    #[test]
    fn snapshot_reads_are_stable(
        prefix in proptest::collection::vec((0u8..3, any::<u16>()), 1..20),
        suffix in proptest::collection::vec((0u8..3, any::<u16>()), 1..20),
    ) {
        let store = MvKvStore::new();
        let row = Key(0);
        for (attr, value) in &prefix {
            store.write(row, Row::new().with(Attr(*attr as u32), value.to_string()), None).unwrap();
        }
        let snapshot_ts = store.latest_timestamp(row).unwrap();
        let before = store.read(row, Some(snapshot_ts)).unwrap();
        for (attr, value) in &suffix {
            store.write(row, Row::new().with(Attr(*attr as u32), value.to_string()), None).unwrap();
        }
        let after = store.read(row, Some(snapshot_ts)).unwrap();
        prop_assert_eq!(before, after);
    }

    /// check_and_write never applies when the expectation is wrong, and
    /// always applies when it is right (single-threaded).
    #[test]
    fn cas_respects_expectation(values in proptest::collection::vec(0u16..1000, 1..30)) {
        let store = MvKvStore::new();
        let key = Key(0);
        let attr = Attr(0);
        let mut current: Option<String> = None;
        for v in values {
            let next = v.to_string();
            // Wrong expectation: guaranteed different from current.
            let wrong = Some("not-the-value");
            prop_assert!(!store
                .check_and_write(key, attr, wrong, Row::new().with(attr, next.clone()))
                .applied());
            // Right expectation applies.
            prop_assert!(store
                .check_and_write(key, attr, current.as_deref(), Row::new().with(attr, next.clone()))
                .applied());
            current = Some(next);
        }
        prop_assert_eq!(store.read_attr(key, attr, None), current);
    }
}
