//! Core value types for the multi-version store.

use std::collections::BTreeMap;
use std::fmt;

/// Row key: a dense integer identifier.
///
/// Application rows carry interned key ids (see `walog::ident`); protocol
/// metadata (the Paxos acceptor state) lives in a reserved region of the key
/// space with the top bit set, so the two can never collide. Using a `Copy`
/// integer instead of an owned string keeps every store operation on the
/// commit hot path free of allocation and string hashing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub u64);

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Attribute (column) identifier within a row: a dense interned integer.
///
/// The topmost ids (`u32::MAX` downwards) are reserved for protocol
/// attributes such as the acceptor's `nextBal`; the interner never hands
/// them out.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Attr(pub u32);

impl fmt::Debug for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Logical timestamp of a row version.
///
/// In the transaction tier a committed transaction's write-ahead-log
/// position serves as the timestamp of every write it contains (§3.2), so
/// timestamps are small dense integers rather than wall-clock values.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The smallest timestamp; no committed data carries it.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The next timestamp after this one.
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts({})", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A single version of a row: an attribute (column) → value map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Row(BTreeMap<Attr, String>);

impl Row {
    /// An empty row.
    pub fn new() -> Self {
        Row(BTreeMap::new())
    }

    /// Build a row from attribute/value pairs.
    pub fn from_pairs<I, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (Attr, V)>,
        V: Into<String>,
    {
        Row(pairs.into_iter().map(|(a, v)| (a, v.into())).collect())
    }

    /// Set an attribute, returning `self` for chaining.
    pub fn with(mut self, attr: Attr, value: impl Into<String>) -> Self {
        self.set(attr, value);
        self
    }

    /// Set an attribute in place.
    pub fn set(&mut self, attr: Attr, value: impl Into<String>) {
        self.0.insert(attr, value.into());
    }

    /// Get an attribute value.
    pub fn get(&self, attr: Attr) -> Option<&str> {
        self.0.get(&attr).map(String::as_str)
    }

    /// Whether the row has no attributes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Iterate over attribute/value pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (Attr, &str)> {
        self.0.iter().map(|(a, v)| (*a, v.as_str()))
    }

    /// Overlay `other` on top of this row: attributes in `other` win,
    /// attributes only in `self` are preserved. This is the merge-upsert
    /// behaviour of column-family stores.
    pub fn merged_with(&self, other: &Row) -> Row {
        let mut out = self.0.clone();
        for (a, v) in &other.0 {
            out.insert(*a, v.clone());
        }
        Row(out)
    }
}

impl<V: Into<String>> FromIterator<(Attr, V)> for Row {
    fn from_iter<T: IntoIterator<Item = (Attr, V)>>(iter: T) -> Self {
        Row::from_pairs(iter)
    }
}

/// The result of a successful versioned read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionRead {
    /// Timestamp of the version returned.
    pub timestamp: Timestamp,
    /// The row contents at that version.
    pub row: Row,
}

/// Errors surfaced by the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MvkvError {
    /// A `write` specified a timestamp that is not greater than the latest
    /// existing version of the row (the paper's "if a version with greater
    /// timestamp exists, an error is returned").
    StaleTimestamp {
        /// Timestamp the caller attempted to write at.
        attempted: Timestamp,
        /// Latest version that already exists.
        latest: Timestamp,
    },
}

impl fmt::Display for MvkvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvkvError::StaleTimestamp { attempted, latest } => write!(
                f,
                "stale write at ts {attempted}: a version with timestamp {latest} already exists"
            ),
        }
    }
}

impl std::error::Error for MvkvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_builder_and_accessors() {
        let row = Row::new().with(Attr(0), "1").with(Attr(1), "2");
        assert_eq!(row.get(Attr(0)), Some("1"));
        assert_eq!(row.get(Attr(9)), None);
        assert_eq!(row.len(), 2);
        assert!(!row.is_empty());
        let pairs: Vec<_> = row.iter().collect();
        assert_eq!(pairs, vec![(Attr(0), "1"), (Attr(1), "2")]);
    }

    #[test]
    fn merge_overlays_new_attributes_and_keeps_old() {
        let base = Row::new().with(Attr(0), "1").with(Attr(1), "2");
        let delta = Row::new().with(Attr(1), "20").with(Attr(2), "30");
        let merged = base.merged_with(&delta);
        assert_eq!(merged.get(Attr(0)), Some("1"));
        assert_eq!(merged.get(Attr(1)), Some("20"));
        assert_eq!(merged.get(Attr(2)), Some("30"));
        // Originals untouched.
        assert_eq!(base.get(Attr(1)), Some("2"));
    }

    #[test]
    fn timestamp_ordering_and_next() {
        assert!(Timestamp(3) > Timestamp(2));
        assert_eq!(Timestamp(3).next(), Timestamp(4));
        assert_eq!(Timestamp::ZERO.next(), Timestamp(1));
        assert_eq!(format!("{}", Timestamp(7)), "7");
    }

    #[test]
    fn error_display_mentions_both_timestamps() {
        let e = MvkvError::StaleTimestamp {
            attempted: Timestamp(3),
            latest: Timestamp(9),
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('9'));
    }

    #[test]
    fn row_from_iterator() {
        let row: Row = vec![(Attr(7), "1"), (Attr(8), "2")].into_iter().collect();
        assert_eq!(row.get(Attr(8)), Some("2"));
    }

    #[test]
    fn key_and_attr_display() {
        assert_eq!(format!("{}", Key(5)), "k5");
        assert_eq!(format!("{}", Attr(3)), "a3");
        assert!(Key(1) < Key(2));
    }
}
