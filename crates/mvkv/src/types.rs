//! Core value types for the multi-version store.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Row key. Keys are unique within and across applications (the transaction
/// group key of the paper is just another row key prefix).
pub type Key = String;

/// Attribute (column) name within a row.
pub type Attr = String;

/// Logical timestamp of a row version.
///
/// In the transaction tier a committed transaction's write-ahead-log
/// position serves as the timestamp of every write it contains (§3.2), so
/// timestamps are small dense integers rather than wall-clock values.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The smallest timestamp; no committed data carries it.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The next timestamp after this one.
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts({})", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A single version of a row: an attribute (column) → value map.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Row(BTreeMap<Attr, String>);

impl Row {
    /// An empty row.
    pub fn new() -> Self {
        Row(BTreeMap::new())
    }

    /// Build a row from attribute/value pairs.
    pub fn from_pairs<I, A, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (A, V)>,
        A: Into<Attr>,
        V: Into<String>,
    {
        Row(pairs
            .into_iter()
            .map(|(a, v)| (a.into(), v.into()))
            .collect())
    }

    /// Set an attribute, returning `self` for chaining.
    pub fn with(mut self, attr: impl Into<Attr>, value: impl Into<String>) -> Self {
        self.set(attr, value);
        self
    }

    /// Set an attribute in place.
    pub fn set(&mut self, attr: impl Into<Attr>, value: impl Into<String>) {
        self.0.insert(attr.into(), value.into());
    }

    /// Get an attribute value.
    pub fn get(&self, attr: &str) -> Option<&str> {
        self.0.get(attr).map(String::as_str)
    }

    /// Whether the row has no attributes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Iterate over attribute/value pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(a, v)| (a.as_str(), v.as_str()))
    }

    /// Overlay `other` on top of this row: attributes in `other` win,
    /// attributes only in `self` are preserved. This is the merge-upsert
    /// behaviour of column-family stores.
    pub fn merged_with(&self, other: &Row) -> Row {
        let mut out = self.0.clone();
        for (a, v) in &other.0 {
            out.insert(a.clone(), v.clone());
        }
        Row(out)
    }
}

impl<A: Into<Attr>, V: Into<String>> FromIterator<(A, V)> for Row {
    fn from_iter<T: IntoIterator<Item = (A, V)>>(iter: T) -> Self {
        Row::from_pairs(iter)
    }
}

/// The result of a successful versioned read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionRead {
    /// Timestamp of the version returned.
    pub timestamp: Timestamp,
    /// The row contents at that version.
    pub row: Row,
}

/// Errors surfaced by the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MvkvError {
    /// A `write` specified a timestamp that is not greater than the latest
    /// existing version of the row (the paper's "if a version with greater
    /// timestamp exists, an error is returned").
    StaleTimestamp {
        /// Timestamp the caller attempted to write at.
        attempted: Timestamp,
        /// Latest version that already exists.
        latest: Timestamp,
    },
}

impl fmt::Display for MvkvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvkvError::StaleTimestamp { attempted, latest } => write!(
                f,
                "stale write at ts {attempted}: a version with timestamp {latest} already exists"
            ),
        }
    }
}

impl std::error::Error for MvkvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_builder_and_accessors() {
        let row = Row::new().with("a", "1").with("b", "2");
        assert_eq!(row.get("a"), Some("1"));
        assert_eq!(row.get("missing"), None);
        assert_eq!(row.len(), 2);
        assert!(!row.is_empty());
        let pairs: Vec<_> = row.iter().collect();
        assert_eq!(pairs, vec![("a", "1"), ("b", "2")]);
    }

    #[test]
    fn merge_overlays_new_attributes_and_keeps_old() {
        let base = Row::new().with("a", "1").with("b", "2");
        let delta = Row::new().with("b", "20").with("c", "30");
        let merged = base.merged_with(&delta);
        assert_eq!(merged.get("a"), Some("1"));
        assert_eq!(merged.get("b"), Some("20"));
        assert_eq!(merged.get("c"), Some("30"));
        // Originals untouched.
        assert_eq!(base.get("b"), Some("2"));
    }

    #[test]
    fn timestamp_ordering_and_next() {
        assert!(Timestamp(3) > Timestamp(2));
        assert_eq!(Timestamp(3).next(), Timestamp(4));
        assert_eq!(Timestamp::ZERO.next(), Timestamp(1));
        assert_eq!(format!("{}", Timestamp(7)), "7");
    }

    #[test]
    fn error_display_mentions_both_timestamps() {
        let e = MvkvError::StaleTimestamp {
            attempted: Timestamp(3),
            latest: Timestamp(9),
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('9'));
    }

    #[test]
    fn row_from_iterator() {
        let row: Row = vec![("x", "1"), ("y", "2")].into_iter().collect();
        assert_eq!(row.get("y"), Some("2"));
    }
}
