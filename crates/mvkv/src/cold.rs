//! Cold-version spill interface: the hook the storage plane's buffer pool
//! plugs into so [`crate::MvKvStore`] can scale past memory.
//!
//! The store keeps the newest versions of every row *hot* (in the version
//! map) and may hand older versions to a [`ColdStore`], replacing them with
//! a placeholder slot. A read that lands on a cold version fetches it back
//! and re-materializes it in place; GC of a cold version tells the backend
//! to drop its copy. The trait is deliberately narrow — put, get, evict —
//! so the in-memory default (no backend) and the paged disk backend are
//! interchangeable and the store itself never learns about pages or
//! frames.

use crate::types::{Key, Row, Timestamp};

/// A backend that can hold evicted (cold) row versions.
///
/// Implementations must be usable behind `Arc` from the store's internal
/// lock; calls are already serialized by that lock.
pub trait ColdStore: Send + Sync {
    /// Persist one version. Returning `false` declines the spill (e.g. the
    /// backend is out of space); the version then stays hot.
    fn put(&self, key: Key, ts: Timestamp, row: &Row) -> bool;

    /// Fetch a previously spilled version. `None` means the backend lost
    /// it — the store treats that as the version not existing, so backends
    /// must only drop what [`ColdStore::evict`] told them to.
    fn get(&self, key: Key, ts: Timestamp) -> Option<Row>;

    /// Drop a spilled version (its timestamp fell below the GC floor).
    fn evict(&self, key: Key, ts: Timestamp);
}
