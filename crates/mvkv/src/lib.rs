//! # mvkv — the per-datacenter multi-version key-value store
//!
//! The paper's transaction tier sits on top of a key-value store that must
//! provide exactly three atomically executed operations (§2.2):
//!
//! * `read(key, timestamp) -> value` — most recent version with a timestamp
//!   ≤ the requested one;
//! * `write(key, value, timestamp)` — create a new version at the given
//!   logical timestamp, failing if a version with a greater timestamp
//!   already exists;
//! * `checkAndWrite(key.testAttribute, testValue, key, value)` — conditional
//!   write against the latest version of the row (the primitive the Paxos
//!   acceptor in Algorithm 1 uses to persist its ballot state atomically).
//!
//! The paper uses HBase; any store with these primitives qualifies, so this
//! crate provides a self-contained in-process implementation with the same
//! semantics: rows are named by interned `Copy` integer [`Key`]s, attributes
//! by interned [`Attr`] ids (see `walog::ident` for the shared string
//! table), each version is a full attribute map (columns), and the logical
//! timestamp of an application write is the write-ahead-log position that
//! committed it.
//!
//! Writes are *merge-upserts*: a new version starts from the latest existing
//! version and overlays the supplied attributes, which mirrors column-family
//! stores where untouched columns remain visible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cold;
mod store;
mod types;

pub use cold::ColdStore;
pub use store::{CasOutcome, MvKvStore, StoreStats};
pub use types::{Attr, Key, MvkvError, Row, Timestamp, VersionRead};
