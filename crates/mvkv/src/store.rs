//! The in-process multi-version store.

use crate::cold::ColdStore;
use crate::types::{Attr, Key, MvkvError, Row, Timestamp, VersionRead};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Outcome of a `check_and_write` (compare-and-swap) operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CasOutcome {
    /// The test attribute matched and the write was applied.
    Applied,
    /// The test attribute did not match; nothing was written.
    Rejected,
}

impl CasOutcome {
    /// True when the conditional write was applied.
    pub fn applied(self) -> bool {
        matches!(self, CasOutcome::Applied)
    }
}

/// Operation counters for a store instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of `read` calls served.
    pub reads: u64,
    /// Number of successful `write` calls.
    pub writes: u64,
    /// Number of `check_and_write` calls that applied.
    pub cas_applied: u64,
    /// Number of `check_and_write` calls that were rejected.
    pub cas_rejected: u64,
    /// Writes rejected because of a stale timestamp.
    pub stale_writes: u64,
    /// Versions handed to the cold store (spilled out of memory).
    pub cold_spills: u64,
    /// Cold versions fetched back and re-materialized on read.
    pub cold_promotions: u64,
}

/// One version slot: resident in memory, or spilled to the cold store.
enum Slot {
    Hot(Row),
    Cold,
}

#[derive(Default)]
struct VersionedRow {
    versions: BTreeMap<Timestamp, Slot>,
}

impl VersionedRow {
    fn latest_ts(&self) -> Option<Timestamp> {
        self.versions.keys().next_back().copied()
    }

    fn floor_ts(&self, at: Timestamp) -> Option<Timestamp> {
        self.versions.range(..=at).next_back().map(|(ts, _)| *ts)
    }

    /// The latest version's row. The spill policy never evicts the latest
    /// version, so this is always resident.
    fn latest_hot(&self) -> Option<(Timestamp, &Row)> {
        match self.versions.iter().next_back() {
            Some((ts, Slot::Hot(row))) => Some((*ts, row)),
            Some((_, Slot::Cold)) => {
                debug_assert!(false, "latest version must stay hot");
                None
            }
            None => None,
        }
    }

    /// Ensure the version at `ts` is resident, fetching from the cold
    /// store if needed, and return it.
    fn materialize(
        &mut self,
        key: Key,
        ts: Timestamp,
        cold: Option<&dyn ColdStore>,
        stats: &mut StoreStats,
    ) -> Option<&Row> {
        if let Some(slot) = self.versions.get_mut(&ts) {
            if matches!(slot, Slot::Cold) {
                let row = cold?.get(key, ts)?;
                *slot = Slot::Hot(row);
                stats.cold_promotions += 1;
            }
        }
        match self.versions.get(&ts) {
            Some(Slot::Hot(row)) => Some(row),
            _ => None,
        }
    }

    /// Spill every hot version older than the newest `hot_keep` to the
    /// cold store (the latest always stays hot: `hot_keep` is clamped to
    /// at least 1 so merge-upserts always have a resident base).
    fn spill_excess(
        &mut self,
        key: Key,
        cold: &dyn ColdStore,
        hot_keep: usize,
        stats: &mut StoreStats,
    ) {
        let keep = hot_keep.max(1);
        let candidates: Vec<Timestamp> = self
            .versions
            .iter()
            .rev()
            .skip(keep)
            .filter(|(_, slot)| matches!(slot, Slot::Hot(_)))
            .map(|(ts, _)| *ts)
            .collect();
        for ts in candidates {
            let Some(Slot::Hot(row)) = self.versions.get(&ts) else {
                continue;
            };
            if cold.put(key, ts, row) {
                self.versions.insert(ts, Slot::Cold);
                stats.cold_spills += 1;
            }
        }
    }
}

/// A multi-version key-value store for one datacenter.
///
/// All operations are atomic with respect to each other (the paper requires
/// per-row atomicity; we provide whole-store atomicity, which is strictly
/// stronger and does not change protocol behaviour). The store is cheap to
/// share: clone an `Arc<MvKvStore>` per user. Rows and attributes are named
/// by `Copy` integer ids, so no operation on the commit hot path hashes or
/// clones a string.
///
/// With a [`ColdStore`] attached ([`MvKvStore::set_cold_store`]) the store
/// keeps only the newest versions of each key resident and spills older
/// ones to the backend, re-materializing them in place on demand — the
/// dataset no longer has to fit in memory.
#[derive(Default)]
pub struct MvKvStore {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    rows: HashMap<Key, VersionedRow>,
    stats: StoreStats,
    cold: Option<Arc<dyn ColdStore>>,
    hot_keep: usize,
}

impl Inner {
    /// Spill the freshly written key's excess versions, if a backend is
    /// attached.
    fn spill(&mut self, key: Key) {
        let Some(cold) = self.cold.clone() else {
            return;
        };
        let hot_keep = self.hot_keep;
        if let Some(row) = self.rows.get_mut(&key) {
            row.spill_excess(key, cold.as_ref(), hot_keep, &mut self.stats);
        }
    }
}

impl MvKvStore {
    /// Create an empty store.
    pub fn new() -> Self {
        MvKvStore::default()
    }

    /// Attach a cold-version backend: versions older than the newest
    /// `hot_keep` per key spill to it as writes land (the latest version
    /// always stays hot).
    pub fn set_cold_store(&self, cold: Arc<dyn ColdStore>, hot_keep: usize) {
        let mut inner = self.inner.write();
        inner.cold = Some(cold);
        inner.hot_keep = hot_keep;
    }

    /// Read the most recent version of `key` with timestamp ≤ `at`.
    /// With `at = None`, reads the most recent version.
    pub fn read(&self, key: Key, at: Option<Timestamp>) -> Option<VersionRead> {
        let mut inner = self.inner.write();
        inner.stats.reads += 1;
        let cold = inner.cold.clone();
        let Inner { rows, stats, .. } = &mut *inner;
        let row = rows.get_mut(&key)?;
        let ts = match at {
            Some(at) => row.floor_ts(at),
            None => row.latest_ts(),
        }?;
        let found = row.materialize(key, ts, cold.as_deref(), stats)?;
        Some(VersionRead {
            timestamp: ts,
            row: found.clone(),
        })
    }

    /// Read a single attribute of `key` as of timestamp `at`.
    pub fn read_attr(&self, key: Key, attr: Attr, at: Option<Timestamp>) -> Option<String> {
        match at {
            Some(ts) => self.read_attr_at(key, attr, ts),
            None => self
                .read(key, None)
                .and_then(|v| v.row.get(attr).map(str::to_owned)),
        }
    }

    /// Fast-path read of a single attribute of `key` at or below `at`:
    /// equivalent to [`MvKvStore::read_attr`] with `Some(at)` but clones
    /// only the matched attribute's value instead of materializing the
    /// whole row. Position-bounded reads — the commit plane's A2 reads and
    /// the snapshot read plane's watermark reads — are single-attribute
    /// point lookups, and the row clone dominated their cost.
    pub fn read_attr_at(&self, key: Key, attr: Attr, at: Timestamp) -> Option<String> {
        let mut inner = self.inner.write();
        inner.stats.reads += 1;
        let cold = inner.cold.clone();
        let Inner { rows, stats, .. } = &mut *inner;
        let row = rows.get_mut(&key)?;
        let ts = row.floor_ts(at)?;
        row.materialize(key, ts, cold.as_deref(), stats)
            .and_then(|row| row.get(attr).map(str::to_owned))
    }

    /// Write `attrs` as a new version of `key`.
    ///
    /// The new version is the latest version overlaid with `attrs`
    /// (merge-upsert). If `ts` is given, it must be strictly greater than
    /// the latest existing version; otherwise a timestamp one greater than
    /// the latest is generated. Returns the timestamp actually written.
    pub fn write(
        &self,
        key: Key,
        attrs: Row,
        ts: Option<Timestamp>,
    ) -> Result<Timestamp, MvkvError> {
        let mut inner = self.inner.write();
        let row = inner.rows.entry(key).or_default();
        let latest = row.latest_ts();
        let target = match (ts, latest) {
            (Some(t), Some(l)) if t <= l => {
                inner.stats.stale_writes += 1;
                return Err(MvkvError::StaleTimestamp {
                    attempted: t,
                    latest: l,
                });
            }
            (Some(t), _) => t,
            (None, Some(l)) => l.next(),
            (None, None) => Timestamp(1),
        };
        let merged = match row.latest_hot() {
            Some((_, base)) => base.merged_with(&attrs),
            None => attrs,
        };
        row.versions.insert(target, Slot::Hot(merged));
        inner.stats.writes += 1;
        inner.spill(key);
        Ok(target)
    }

    /// Write at a specific timestamp, treating an existing version at **the
    /// same or greater** timestamp as success-without-effect (idempotent
    /// replay). Used when applying write-ahead-log entries: applying the same
    /// log position twice must not fail.
    pub fn apply_idempotent(&self, key: Key, attrs: Row, ts: Timestamp) -> bool {
        match self.write(key, attrs, Some(ts)) {
            Ok(_) => true,
            Err(MvkvError::StaleTimestamp { .. }) => false,
        }
    }

    /// The paper's `checkAndWrite`: if the **latest** version of `key` has
    /// `test_attr` equal to `expected` (a missing row or attribute matches
    /// `expected = None`), write `attrs` as a new version and report
    /// [`CasOutcome::Applied`]; otherwise write nothing.
    pub fn check_and_write(
        &self,
        key: Key,
        test_attr: Attr,
        expected: Option<&str>,
        attrs: Row,
    ) -> CasOutcome {
        let mut inner = self.inner.write();
        let row = inner.rows.entry(key).or_default();
        let current = row.latest_hot().and_then(|(_, r)| r.get(test_attr));
        if current != expected {
            inner.stats.cas_rejected += 1;
            return CasOutcome::Rejected;
        }
        let target = row.latest_ts().map(Timestamp::next).unwrap_or(Timestamp(1));
        let merged = match row.latest_hot() {
            Some((_, base)) => base.merged_with(&attrs),
            None => attrs,
        };
        row.versions.insert(target, Slot::Hot(merged));
        inner.stats.writes += 1;
        inner.stats.cas_applied += 1;
        inner.spill(key);
        CasOutcome::Applied
    }

    /// The latest version timestamp of `key`, if any version exists.
    pub fn latest_timestamp(&self, key: Key) -> Option<Timestamp> {
        self.inner.read().rows.get(&key).and_then(|r| r.latest_ts())
    }

    /// Number of stored versions of `key` (hot and cold).
    pub fn version_count(&self, key: Key) -> usize {
        self.inner
            .read()
            .rows
            .get(&key)
            .map(|r| r.versions.len())
            .unwrap_or(0)
    }

    /// Number of versions of `key` currently spilled to the cold store.
    pub fn cold_version_count(&self, key: Key) -> usize {
        self.inner
            .read()
            .rows
            .get(&key)
            .map(|r| {
                r.versions
                    .values()
                    .filter(|slot| matches!(slot, Slot::Cold))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Number of distinct keys with at least one version.
    pub fn key_count(&self) -> usize {
        self.inner.read().rows.len()
    }

    /// The timestamp of the newest version of `key` at or before `at`: the
    /// oldest version a reader pinned at `at` can still need, and therefore
    /// the safe `keep_from` cutoff for [`MvKvStore::gc_versions_before`].
    /// `None` when the key has no version at or before `at`.
    pub fn version_floor(&self, key: Key, at: Timestamp) -> Option<Timestamp> {
        self.inner
            .read()
            .rows
            .get(&key)
            .and_then(|r| r.floor_ts(at))
    }

    /// Drop all versions of `key` strictly older than `keep_from`, keeping at
    /// least the latest version. Cold versions removed this way are also
    /// evicted from the backend. Returns the number of versions removed.
    pub fn gc_versions_before(&self, key: Key, keep_from: Timestamp) -> usize {
        let mut inner = self.inner.write();
        let cold = inner.cold.clone();
        let Some(row) = inner.rows.get_mut(&key) else {
            return 0;
        };
        let latest = match row.latest_ts() {
            Some(ts) => ts,
            None => return 0,
        };
        let cutoff = keep_from.min(latest);
        let keep = row.versions.split_off(&cutoff);
        let dropped = std::mem::replace(&mut row.versions, keep);
        if let Some(cold) = cold {
            for (ts, slot) in &dropped {
                if matches!(slot, Slot::Cold) {
                    cold.evict(key, *ts);
                }
            }
        }
        dropped.len()
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.read().stats
    }

    /// All keys currently present (sorted), mainly for debugging and tests.
    pub fn keys(&self) -> Vec<Key> {
        let mut keys: Vec<_> = self.inner.read().rows.keys().copied().collect();
        keys.sort();
        keys
    }

    /// Every retained version of every key matching `pred`, cold versions
    /// included (fetched from the backend without promoting them), sorted
    /// by key then timestamp. This is the snapshot writer's view of the
    /// store.
    pub fn dump_versions(&self, pred: impl Fn(Key) -> bool) -> Vec<(Key, Vec<(Timestamp, Row)>)> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        for (&key, row) in &inner.rows {
            if !pred(key) {
                continue;
            }
            let mut versions = Vec::with_capacity(row.versions.len());
            for (&ts, slot) in &row.versions {
                let materialized = match slot {
                    Slot::Hot(r) => Some(r.clone()),
                    Slot::Cold => inner.cold.as_ref().and_then(|c| c.get(key, ts)),
                };
                if let Some(r) = materialized {
                    versions.push((ts, r));
                }
            }
            if !versions.is_empty() {
                out.push((key, versions));
            }
        }
        out.sort_by_key(|(key, _)| *key);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    const K: Key = Key(10);
    const A: Attr = Attr(0);
    const B: Attr = Attr(1);

    fn row(pairs: &[(Attr, &str)]) -> Row {
        Row::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn read_returns_latest_version_at_or_before_timestamp() {
        let store = MvKvStore::new();
        store
            .write(K, row(&[(A, "v1")]), Some(Timestamp(1)))
            .unwrap();
        store
            .write(K, row(&[(A, "v3")]), Some(Timestamp(3)))
            .unwrap();

        let at2 = store.read(K, Some(Timestamp(2))).unwrap();
        assert_eq!(at2.timestamp, Timestamp(1));
        assert_eq!(at2.row.get(A), Some("v1"));

        let at3 = store.read(K, Some(Timestamp(3))).unwrap();
        assert_eq!(at3.row.get(A), Some("v3"));

        let latest = store.read(K, None).unwrap();
        assert_eq!(latest.timestamp, Timestamp(3));

        assert!(store.read(K, Some(Timestamp::ZERO)).is_none());
        assert!(store.read(Key(999), None).is_none());
    }

    #[test]
    fn read_attr_at_matches_the_row_materializing_path() {
        let store = MvKvStore::new();
        store
            .write(K, row(&[(A, "v1"), (B, "b1")]), Some(Timestamp(1)))
            .unwrap();
        store
            .write(K, row(&[(A, "v3")]), Some(Timestamp(3)))
            .unwrap();
        for ts in [0, 1, 2, 3, 9] {
            for attr in [A, B, Attr(99)] {
                let slow = store
                    .read(K, Some(Timestamp(ts)))
                    .and_then(|v| v.row.get(attr).map(str::to_owned));
                assert_eq!(
                    store.read_attr_at(K, attr, Timestamp(ts)),
                    slow,
                    "ts={ts} attr={attr:?}"
                );
            }
        }
        assert_eq!(store.read_attr_at(Key(999), A, Timestamp(5)), None);
    }

    #[test]
    fn write_merges_with_previous_version() {
        let store = MvKvStore::new();
        store
            .write(K, row(&[(A, "1"), (B, "2")]), Some(Timestamp(1)))
            .unwrap();
        store
            .write(K, row(&[(B, "20")]), Some(Timestamp(2)))
            .unwrap();
        let v = store.read(K, None).unwrap();
        assert_eq!(v.row.get(A), Some("1"));
        assert_eq!(v.row.get(B), Some("20"));
        // The old version is still readable.
        let old = store.read(K, Some(Timestamp(1))).unwrap();
        assert_eq!(old.row.get(B), Some("2"));
    }

    #[test]
    fn stale_write_is_rejected_with_error() {
        let store = MvKvStore::new();
        store
            .write(K, row(&[(A, "1")]), Some(Timestamp(5)))
            .unwrap();
        let err = store
            .write(K, row(&[(A, "2")]), Some(Timestamp(5)))
            .unwrap_err();
        assert_eq!(
            err,
            MvkvError::StaleTimestamp {
                attempted: Timestamp(5),
                latest: Timestamp(5)
            }
        );
        assert_eq!(store.stats().stale_writes, 1);
    }

    #[test]
    fn apply_idempotent_swallows_replays() {
        let store = MvKvStore::new();
        assert!(store.apply_idempotent(K, row(&[(A, "1")]), Timestamp(4)));
        assert!(!store.apply_idempotent(K, row(&[(A, "1")]), Timestamp(4)));
        assert_eq!(store.version_count(K), 1);
    }

    #[test]
    fn generated_timestamps_are_monotonic() {
        let store = MvKvStore::new();
        let t1 = store.write(K, row(&[(A, "1")]), None).unwrap();
        let t2 = store.write(K, row(&[(A, "2")]), None).unwrap();
        assert!(t2 > t1);
        assert_eq!(t1, Timestamp(1));
        assert_eq!(t2, Timestamp(2));
    }

    #[test]
    fn check_and_write_applies_only_on_match() {
        let store = MvKvStore::new();
        let p = Key(1);
        let next_bal = Attr(100);
        let other = Attr(101);
        // Missing row: expected None matches.
        assert_eq!(
            store.check_and_write(p, next_bal, None, row(&[(next_bal, "3")])),
            CasOutcome::Applied
        );
        // Wrong expectation rejected.
        assert_eq!(
            store.check_and_write(p, next_bal, Some("99"), row(&[(next_bal, "5")])),
            CasOutcome::Rejected
        );
        assert_eq!(store.read_attr(p, next_bal, None).as_deref(), Some("3"));
        // Correct expectation applied, other attributes preserved via merge.
        store.write(p, row(&[(other, "x")]), None).unwrap();
        assert_eq!(
            store.check_and_write(p, next_bal, Some("3"), row(&[(next_bal, "7")])),
            CasOutcome::Applied
        );
        let v = store.read(p, None).unwrap();
        assert_eq!(v.row.get(next_bal), Some("7"));
        assert_eq!(v.row.get(other), Some("x"));
        let stats = store.stats();
        assert_eq!(stats.cas_applied, 2);
        assert_eq!(stats.cas_rejected, 1);
    }

    #[test]
    fn cas_on_missing_attribute_matches_none() {
        let store = MvKvStore::new();
        let p = Key(1);
        store.write(p, row(&[(B, "x")]), None).unwrap();
        assert_eq!(
            store.check_and_write(p, A, None, row(&[(A, "1")])),
            CasOutcome::Applied
        );
    }

    #[test]
    fn gc_keeps_latest_and_later_versions() {
        let store = MvKvStore::new();
        for i in 1..=5 {
            store
                .write(K, row(&[(A, &i.to_string())]), Some(Timestamp(i)))
                .unwrap();
        }
        let removed = store.gc_versions_before(K, Timestamp(4));
        assert_eq!(removed, 3);
        assert_eq!(store.version_count(K), 2);
        assert!(store.read(K, Some(Timestamp(3))).is_none());
        assert_eq!(store.read(K, None).unwrap().timestamp, Timestamp(5));
        // GC past the latest version still keeps the latest.
        let removed = store.gc_versions_before(K, Timestamp(100));
        assert_eq!(removed, 1);
        assert_eq!(store.version_count(K), 1);
        assert_eq!(store.gc_versions_before(Key(999), Timestamp(1)), 0);
    }

    #[test]
    fn version_floor_names_the_version_a_pinned_reader_needs() {
        let store = MvKvStore::new();
        store
            .write(K, row(&[(A, "2")]), Some(Timestamp(2)))
            .unwrap();
        store
            .write(K, row(&[(A, "5")]), Some(Timestamp(5)))
            .unwrap();
        assert_eq!(store.version_floor(K, Timestamp(1)), None);
        assert_eq!(store.version_floor(K, Timestamp(2)), Some(Timestamp(2)));
        assert_eq!(store.version_floor(K, Timestamp(4)), Some(Timestamp(2)));
        assert_eq!(store.version_floor(K, Timestamp(9)), Some(Timestamp(5)));
        assert_eq!(store.version_floor(Key(999), Timestamp(9)), None);
        // GC at the floor keeps exactly what a reader pinned there needs.
        let floor = store.version_floor(K, Timestamp(4)).unwrap();
        assert_eq!(store.gc_versions_before(K, floor), 0);
        assert_eq!(
            store.read_attr(K, A, Some(Timestamp(4))).as_deref(),
            Some("2")
        );
    }

    #[test]
    fn key_listing_and_counts() {
        let store = MvKvStore::new();
        store.write(Key(2), Row::new().with(A, "1"), None).unwrap();
        store.write(Key(1), Row::new().with(A, "1"), None).unwrap();
        assert_eq!(store.key_count(), 2);
        assert_eq!(store.keys(), vec![Key(1), Key(2)]);
        assert_eq!(store.latest_timestamp(Key(1)), Some(Timestamp(1)));
        assert_eq!(store.latest_timestamp(Key(999)), None);
    }

    #[test]
    fn reads_are_counted() {
        let store = MvKvStore::new();
        store.write(K, Row::new().with(A, "1"), None).unwrap();
        store.read(K, None);
        store.read(K, None);
        store.read(Key(999), None);
        assert_eq!(store.stats().reads, 3);
        assert_eq!(store.stats().writes, 1);
    }

    /// Map-backed [`ColdStore`] for exercising the spill machinery without
    /// the disk pager.
    #[derive(Default)]
    struct MapCold {
        map: Mutex<BTreeMap<(u64, u64), Row>>,
        decline: Mutex<bool>,
    }

    impl ColdStore for MapCold {
        fn put(&self, key: Key, ts: Timestamp, row: &Row) -> bool {
            if *self.decline.lock() {
                return false;
            }
            self.map.lock().insert((key.0, ts.0), row.clone());
            true
        }

        fn get(&self, key: Key, ts: Timestamp) -> Option<Row> {
            self.map.lock().get(&(key.0, ts.0)).cloned()
        }

        fn evict(&self, key: Key, ts: Timestamp) {
            self.map.lock().remove(&(key.0, ts.0));
        }
    }

    #[test]
    fn old_versions_spill_and_promote_transparently() {
        let store = MvKvStore::new();
        let cold = Arc::new(MapCold::default());
        store.set_cold_store(cold.clone(), 2);
        for i in 1..=6 {
            store
                .write(K, row(&[(A, &format!("v{i}"))]), Some(Timestamp(i)))
                .unwrap();
        }
        // 6 versions, 2 hot: 4 spilled.
        assert_eq!(store.version_count(K), 6);
        assert_eq!(store.cold_version_count(K), 4);
        assert_eq!(cold.map.lock().len(), 4);
        assert_eq!(store.stats().cold_spills, 4);
        // Reading a cold version promotes it back, transparently.
        let v = store.read(K, Some(Timestamp(2))).unwrap();
        assert_eq!(v.row.get(A), Some("v2"));
        assert_eq!(store.stats().cold_promotions, 1);
        assert_eq!(store.cold_version_count(K), 3);
        // read_attr_at promotes too.
        assert_eq!(
            store.read_attr_at(K, A, Timestamp(1)).as_deref(),
            Some("v1")
        );
        // The latest version never spills.
        let latest = store.read(K, None).unwrap();
        assert_eq!(latest.timestamp, Timestamp(6));
        assert_eq!(store.stats().cold_promotions, 2);
    }

    #[test]
    fn gc_evicts_cold_versions_from_the_backend() {
        let store = MvKvStore::new();
        let cold = Arc::new(MapCold::default());
        store.set_cold_store(cold.clone(), 1);
        for i in 1..=5 {
            store
                .write(K, row(&[(A, &i.to_string())]), Some(Timestamp(i)))
                .unwrap();
        }
        assert_eq!(store.cold_version_count(K), 4);
        store.gc_versions_before(K, Timestamp(4));
        // Versions 1..=3 are gone from memory AND the backend.
        assert_eq!(cold.map.lock().len(), 1);
        assert_eq!(store.cold_version_count(K), 1);
        assert!(store.read(K, Some(Timestamp(3))).is_none());
        assert_eq!(
            store.read(K, Some(Timestamp(4))).unwrap().row.get(A),
            Some("4")
        );
    }

    #[test]
    fn declined_spills_stay_hot() {
        let store = MvKvStore::new();
        let cold = Arc::new(MapCold::default());
        *cold.decline.lock() = true;
        store.set_cold_store(cold.clone(), 1);
        for i in 1..=4 {
            store
                .write(K, row(&[(A, &i.to_string())]), Some(Timestamp(i)))
                .unwrap();
        }
        assert_eq!(store.cold_version_count(K), 0);
        assert_eq!(store.stats().cold_spills, 0);
        assert_eq!(
            store.read(K, Some(Timestamp(1))).unwrap().row.get(A),
            Some("1")
        );
    }

    #[test]
    fn dump_versions_materializes_cold_slots() {
        let store = MvKvStore::new();
        let cold = Arc::new(MapCold::default());
        store.set_cold_store(cold, 1);
        for i in 1..=3 {
            store
                .write(K, row(&[(A, &i.to_string())]), Some(Timestamp(i)))
                .unwrap();
        }
        store.write(Key(99), row(&[(A, "other")]), None).unwrap();
        let dump = store.dump_versions(|k| k == K);
        assert_eq!(dump.len(), 1);
        let (key, versions) = &dump[0];
        assert_eq!(*key, K);
        assert_eq!(versions.len(), 3);
        assert_eq!(versions[0].0, Timestamp(1));
        assert_eq!(versions[0].1.get(A), Some("1"));
        // Dumping does not promote.
        assert_eq!(store.cold_version_count(K), 2);
        assert_eq!(store.stats().cold_promotions, 0);
    }
}
