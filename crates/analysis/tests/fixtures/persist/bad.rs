// Fixture: an acceptor that acks a promise and a vote without ever
// touching the WAL — both replies vanish with the next crash.

impl Acceptor {
    fn on_prepare(&mut self, ctx: &mut Context, from: NodeId) {
        let outcome = self.handle_prepare(self.group, self.position, self.ballot);
        ctx.send(
            from,
            Msg::Paxos(PaxosMsg::PrepareReply {
                group: self.group,
                position: self.position,
                ballot: self.ballot,
                promised: outcome.promised,
                next_bal: outcome.next_bal,
                last_vote: outcome.last_vote,
            }),
        );
    }

    fn on_accept(&mut self, ctx: &mut Context, from: NodeId, value: LogEntry) {
        let accepted = self.handle_accept(self.group, self.position, self.ballot, &value);
        ctx.send(
            from,
            Msg::Paxos(PaxosMsg::AcceptReply {
                group: self.group,
                position: self.position,
                ballot: self.ballot,
                accepted,
            }),
        );
    }
}
