// Fixture: compares the raw proposer id — a recovery ballot (proposer id
// with RECOVERY_BALLOT_BIT set) from this very node would compare unequal.
fn is_own_ballot(ballot: &Ballot, node_id: u64) -> bool {
    ballot.proposer == node_id
}

fn highest_ranked(a: &Ballot, b: &Ballot) -> bool {
    a.round > b.round || a.proposer > b.proposer
}
