// Fixture: the same raw comparison, waived.
fn is_exact_ballot(ballot: &Ballot, raw_id: u64) -> bool {
    // lint:allow(ballot-discipline): callers pass ids with the bit baked in
    ballot.proposer == raw_id
}
