// Fixture: the ballot type. Declaring file — exempt from the lint.
pub struct Ballot {
    pub round: u64,
    pub proposer: u64,
}

impl Ballot {
    pub fn is_mine(&self, id: u64) -> bool {
        self.proposer == id
    }
}
