// Fixture: every determinism violation class, unwaived.
use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

struct Tracker {
    seen: HashSet<u64>,
    routes: HashMap<u64, u32>,
}

impl Tracker {
    fn stamp(&self) -> Instant {
        Instant::now()
    }

    fn wall(&self) -> SystemTime {
        SystemTime::now()
    }

    fn shuffle(&mut self) {
        let mut rng = thread_rng();
        let _ = rng;
    }

    fn broadcast(&self) -> Vec<u32> {
        // Hash-ordered iteration: reply order differs run to run.
        self.routes.values().copied().collect()
    }

    fn sweep(&self) {
        for id in &self.seen {
            let _ = id;
        }
    }
}
