// Fixture: the same violations, each covered by a lint:allow waiver.
struct Probe {
    routes: HashMap<u64, u32>,
}

impl Probe {
    fn stamp_micros(&self) -> u64 {
        // lint:allow(determinism): wall clock is this probe's whole purpose
        Instant::now().elapsed().as_micros() as u64
    }

    fn broadcast(&self) -> u64 {
        // lint:allow(determinism): order folded through a commutative sum
        self.routes.values().map(|v| *v as u64).sum()
    }
}
