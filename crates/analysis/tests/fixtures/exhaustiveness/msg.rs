// Fixture: message enum declaration. The kind() accessor matches every
// variant but must NOT count as handling — it lives in the declaring file.
pub enum FixtureMsg {
    Hello(u64),
    Data { seq: u64 },
    Bye,
}

impl FixtureMsg {
    pub fn kind(&self) -> &'static str {
        match self {
            FixtureMsg::Hello(_) => "hello",
            FixtureMsg::Data { .. } => "data",
            FixtureMsg::Bye => "bye",
        }
    }
}
