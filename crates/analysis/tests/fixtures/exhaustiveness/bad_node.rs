// Fixture: constructs all three variants but only handles two — the
// handler silently drops FixtureMsg::Bye.
fn send_all() -> Vec<FixtureMsg> {
    vec![
        FixtureMsg::Hello(1),
        FixtureMsg::Data { seq: 2 },
        FixtureMsg::Bye,
    ]
}

fn on_message(msg: FixtureMsg) {
    match msg {
        FixtureMsg::Hello(n) => drop(n),
        FixtureMsg::Data { seq } => drop(seq),
        _ => {}
    }
}
