// Fixture: the same dropped variant, waived at the construction site.
fn send_all() -> Vec<FixtureMsg> {
    vec![
        FixtureMsg::Hello(1),
        FixtureMsg::Data { seq: 2 },
        // lint:allow(msg-exhaustiveness): Bye is a tombstone nobody reads
        FixtureMsg::Bye,
    ]
}

fn on_message(msg: FixtureMsg) {
    match msg {
        FixtureMsg::Hello(n) => drop(n),
        FixtureMsg::Data { seq } => drop(seq),
        _ => {}
    }
}
