// Fixture: JSON export that covers every field but the last one.
pub fn results_to_json(m: &RunMetrics) -> String {
    format!(
        "{{\"attempted\": {}, \"committed\": {}}}",
        m.attempted, m.committed
    )
}
