// Fixture: a RunMetrics whose last field never reaches the export or docs.
pub struct RunMetrics {
    pub attempted: usize,
    pub committed: usize,
    pub ghost_counter: u64,
}
