// Fixture: the unexported field, waived where it is declared.
pub struct RunMetrics {
    pub attempted: usize,
    pub committed: usize,
    // lint:allow(metrics-completeness): scratch counter, export pending
    pub ghost_counter: u64,
}
