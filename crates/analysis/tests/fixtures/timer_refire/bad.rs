// Fixture: two timer namespaces; recovery re-arms only one of them, and
// the PING_TAG state machine wedges after the first crash.
const TICK_TAG: u64 = 1;
const PING_TAG: u64 = 2;

impl Driver {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(self.interval, TICK_TAG);
        ctx.set_timer(self.interval, PING_TAG);
    }

    fn on_recover(&mut self, ctx: &mut Context) {
        ctx.set_timer(self.interval, TICK_TAG);
    }
}
