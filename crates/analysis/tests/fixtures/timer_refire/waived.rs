// Fixture: a harness actor with no recovery path at all, waived.
const TICK_TAG: u64 = 1;

impl Harness {
    fn on_start(&mut self, ctx: &mut Context) {
        // lint:allow(timer-refire): measurement harness, never crashed
        ctx.set_timer(self.interval, TICK_TAG);
    }
}
