//! The fixture corpus: every lint must fire on its known-bad fixture and
//! fall silent on the waived variant — so a lint that rots into a no-op
//! fails CI here, not silently in the field. The final test runs the whole
//! suite over the live workspace: the tree must stay clean.

use analysis::{lints, Workspace};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

/// Build a fixture workspace whose files land in lint-scoped crates.
fn ws(files: &[(&str, &str)], docs: &[(&str, &str)]) -> Workspace {
    let owned_files: Vec<(String, String)> = files
        .iter()
        .map(|(rel, fixture_name)| ((*rel).to_string(), fixture(fixture_name)))
        .collect();
    let owned_docs: Vec<(String, String)> = docs
        .iter()
        .map(|(rel, fixture_name)| ((*rel).to_string(), fixture(fixture_name)))
        .collect();
    Workspace::from_sources(
        &owned_files
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect::<Vec<_>>(),
        &owned_docs
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect::<Vec<_>>(),
    )
}

#[test]
fn determinism_fires_on_bad_fixture() {
    let ws = ws(&[("crates/core/src/bad.rs", "determinism/bad.rs")], &[]);
    let report = analysis::run(&ws);
    let msgs: Vec<&str> = report.active.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("Instant")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("SystemTime")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("thread_rng")), "{msgs:?}");
    assert!(
        msgs.iter()
            .any(|m| m.contains("`values`") && m.contains("routes")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("for") && m.contains("seen")),
        "{msgs:?}"
    );
    assert!(report.active.iter().all(|f| f.lint == lints::DETERMINISM));
}

#[test]
fn determinism_waivers_suppress_and_are_all_used() {
    let ws = ws(
        &[("crates/core/src/waived.rs", "determinism/waived.rs")],
        &[],
    );
    let report = analysis::run(&ws);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.waived.len(), 2, "{:?}", report.waived);
}

#[test]
fn msg_exhaustiveness_fires_on_dropped_variant() {
    let ws = ws(
        &[
            ("crates/core/src/msg.rs", "exhaustiveness/msg.rs"),
            ("crates/core/src/node.rs", "exhaustiveness/bad_node.rs"),
        ],
        &[],
    );
    let report = analysis::run(&ws);
    assert_eq!(report.active.len(), 1, "{}", report.render());
    assert_eq!(report.active[0].lint, lints::MSG_EXHAUSTIVENESS);
    assert!(report.active[0].message.contains("FixtureMsg::Bye"));
    assert_eq!(report.active[0].rel, "crates/core/src/node.rs");
}

#[test]
fn msg_exhaustiveness_waiver_suppresses() {
    let ws = ws(
        &[
            ("crates/core/src/msg.rs", "exhaustiveness/msg.rs"),
            ("crates/core/src/node.rs", "exhaustiveness/waived_node.rs"),
        ],
        &[],
    );
    let report = analysis::run(&ws);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.waived.len(), 1);
}

#[test]
fn timer_refire_fires_on_unrearmed_tag() {
    let ws = ws(&[("crates/core/src/bad.rs", "timer_refire/bad.rs")], &[]);
    let report = analysis::run(&ws);
    assert_eq!(report.active.len(), 1, "{}", report.render());
    assert_eq!(report.active[0].lint, lints::TIMER_REFIRE);
    assert!(report.active[0].message.contains("PING_TAG"));
}

#[test]
fn timer_refire_waiver_suppresses() {
    let ws = ws(
        &[("crates/core/src/waived.rs", "timer_refire/waived.rs")],
        &[],
    );
    let report = analysis::run(&ws);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.waived.len(), 1);
}

#[test]
fn metrics_completeness_fires_on_ghost_field() {
    let ws = ws(
        &[
            ("crates/core/src/metrics.rs", "metrics/metrics.rs"),
            ("crates/bench/src/report.rs", "metrics/report.rs"),
        ],
        &[("docs/BENCHMARKS.md", "metrics/BENCHMARKS.md")],
    );
    let report = analysis::run(&ws);
    // ghost_counter is both unexported and undocumented: two findings.
    assert_eq!(report.active.len(), 2, "{}", report.render());
    assert!(report
        .active
        .iter()
        .all(|f| f.lint == lints::METRICS_COMPLETENESS && f.message.contains("ghost_counter")));
}

#[test]
fn metrics_completeness_waiver_suppresses_both_findings() {
    let ws = ws(
        &[
            ("crates/core/src/metrics.rs", "metrics/waived_metrics.rs"),
            ("crates/bench/src/report.rs", "metrics/report.rs"),
        ],
        &[("docs/BENCHMARKS.md", "metrics/BENCHMARKS.md")],
    );
    let report = analysis::run(&ws);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.waived.len(), 2);
}

#[test]
fn ballot_discipline_fires_on_unmasked_comparison() {
    let ws = ws(
        &[
            ("crates/paxos/src/ballot.rs", "ballot/ballot.rs"),
            ("crates/paxos/src/leader.rs", "ballot/bad_use.rs"),
        ],
        &[],
    );
    let report = analysis::run(&ws);
    assert_eq!(report.active.len(), 1, "{}", report.render());
    assert_eq!(report.active[0].lint, lints::BALLOT_DISCIPLINE);
    assert_eq!(report.active[0].rel, "crates/paxos/src/leader.rs");
}

#[test]
fn ballot_discipline_waiver_suppresses() {
    let ws = ws(
        &[
            ("crates/paxos/src/ballot.rs", "ballot/ballot.rs"),
            ("crates/paxos/src/leader.rs", "ballot/waived_use.rs"),
        ],
        &[],
    );
    let report = analysis::run(&ws);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.waived.len(), 1);
}

#[test]
fn persist_before_ack_fires_on_unpersisted_replies() {
    let ws = ws(&[("crates/core/src/service.rs", "persist/bad.rs")], &[]);
    let report = analysis::run(&ws);
    assert_eq!(report.active.len(), 2, "{}", report.render());
    assert!(report
        .active
        .iter()
        .all(|f| f.lint == lints::PERSIST_BEFORE_ACK));
    assert!(report.active[0].message.contains("PrepareReply"));
    assert!(report.active[1].message.contains("AcceptReply"));
}

#[test]
fn persist_before_ack_waiver_suppresses() {
    let ws = ws(&[("crates/core/src/service.rs", "persist/waived.rs")], &[]);
    let report = analysis::run(&ws);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.waived.len(), 2);
}

#[test]
fn stale_waiver_fails_the_run() {
    let ws = Workspace::from_sources(
        &[(
            "crates/core/src/x.rs",
            "// lint:allow(determinism): nothing here violates anything\nfn quiet() {}\n",
        )],
        &[],
    );
    let report = analysis::run(&ws);
    assert!(!report.is_clean());
    assert_eq!(report.unused_waivers.len(), 1);
    assert_eq!(report.unused_waivers[0].lint, "unused-waiver");
}

/// The suite's own CI gate: the live workspace must be lint-clean. Every
/// intentional exception is waived inline with a reason; anything else that
/// fires here is a real protocol hazard introduced since this PR.
#[test]
fn live_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let ws = Workspace::load(&root).expect("load workspace");
    assert!(
        ws.files.len() > 20,
        "workspace loader found only {} files — scan roots moved?",
        ws.files.len()
    );
    let report = analysis::run(&ws);
    assert!(report.is_clean(), "\n{}", report.render());
    // The waiver inventory is intentional and bounded: wall-clock use in the
    // parallel (real-time) runtime and never-crashed measurement harnesses.
    assert!(
        report.waived.len() >= 8,
        "expected the inventoried exceptions, got {}",
        report.waived.len()
    );
}
