//! In-tree protocol lint suite.
//!
//! The type system cannot see protocol invariants: that simnet-reachable
//! code stays deterministic, that every message variant constructed has a
//! handler, that every timer an actor sets is re-armed after a crash, that
//! every metric collected reaches the exported schema, and that ballot
//! proposer comparisons respect the recovery bit. This crate checks them
//! statically, with a hand-rolled token scanner (the container has no
//! registry access, so no `syn`) and an inline waiver syntax:
//!
//! ```text
//! // lint:allow(<lint-name>): reason the exception is intentional
//! ```
//!
//! A waiver covers its own line and the next code line, must carry a
//! reason, and must suppress at least one finding — stale waivers fail the
//! run as `unused-waiver`. See `docs/ANALYSIS.md` for the full lint
//! catalogue and `protocol-lint --help` for the CLI.

pub mod findings;
pub mod lexer;
pub mod lints;
pub mod source;

pub use findings::{Finding, Report, Waived};
pub use source::Workspace;

/// Run every lint over the workspace and fold waivers into a report.
pub fn run(ws: &Workspace) -> Report {
    let mut all = Vec::new();
    for lint in &lints::LINTS {
        all.extend((lint.run)(ws));
    }
    findings::apply_waivers(ws, all)
}
