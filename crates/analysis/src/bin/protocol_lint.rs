//! `protocol-lint` — run the protocol lint suite over the live workspace.
//!
//! Exit status 0 when clean (no active findings, no stale waivers), 1 when
//! anything fires, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
protocol-lint: static protocol-invariant checks for this workspace

USAGE:
    protocol-lint [--root <dir>] [--waivers] [--list]

OPTIONS:
    --root <dir>   Workspace root (default: discovered from the current
                   directory by walking up to a Cargo.toml with [workspace])
    --waivers      Also print the waiver inventory (every intentional
                   exception with its stated reason)
    --list         List the lints and exit
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut show_waivers = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--waivers" => show_waivers = true,
            "--list" => {
                for lint in &analysis::lints::LINTS {
                    println!("{:<22} {}", lint.name, lint.describe);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.map_or_else(discover_root, Ok) {
        Ok(root) => root,
        Err(err) => {
            eprintln!("protocol-lint: {err}");
            return ExitCode::from(2);
        }
    };
    let ws = match analysis::Workspace::load(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!(
                "protocol-lint: failed to load workspace at {}: {err}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let report = analysis::run(&ws);
    print!("{}", report.render());
    if show_waivers {
        print!("{}", report.render_waivers());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn discover_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(
                "no workspace root found above the current directory (pass --root)".to_string(),
            );
        }
    }
}
