//! Findings, waiver application and report formatting.

use crate::source::Workspace;

/// One lint violation, anchored to a source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Lint name (`determinism`, `msg-exhaustiveness`, ...).
    pub lint: &'static str,
    /// Workspace-relative file path.
    pub rel: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A finding suppressed by an inline waiver.
#[derive(Clone, Debug)]
pub struct Waived {
    /// The suppressed finding.
    pub finding: Finding,
    /// The waiver's stated reason.
    pub reason: String,
}

/// Result of a full lint run: what fires, what was waived (the intentional-
/// exception inventory), and waivers that no longer suppress anything.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that fail the run.
    pub active: Vec<Finding>,
    /// Findings suppressed by `lint:allow` comments.
    pub waived: Vec<Waived>,
    /// Waivers that matched no finding — stale, and reported as
    /// `unused-waiver` violations so the inventory cannot rot.
    pub unused_waivers: Vec<Finding>,
}

impl Report {
    /// True when nothing fails the run.
    pub fn is_clean(&self) -> bool {
        self.active.is_empty() && self.unused_waivers.is_empty()
    }

    /// Render the report for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.active {
            out.push_str(&format!(
                "{}: {}:{}: {}\n",
                f.lint, f.rel, f.line, f.message
            ));
        }
        for f in &self.unused_waivers {
            out.push_str(&format!(
                "{}: {}:{}: {}\n",
                f.lint, f.rel, f.line, f.message
            ));
        }
        out.push_str(&format!(
            "protocol-lint: {} violation(s), {} waived, {} stale waiver(s)\n",
            self.active.len(),
            self.waived.len(),
            self.unused_waivers.len()
        ));
        out
    }

    /// Render the waiver inventory: every intentional exception with its
    /// stated reason (the determinism-boundary audit trail).
    pub fn render_waivers(&self) -> String {
        let mut out = String::from("waiver inventory (intentional exceptions):\n");
        for w in &self.waived {
            out.push_str(&format!(
                "  {}: {}:{}: {}\n",
                w.finding.lint, w.finding.rel, w.finding.line, w.reason
            ));
        }
        out
    }
}

/// Split raw findings into active and waived using each file's waivers,
/// then flag waivers that suppressed nothing.
pub fn apply_waivers(ws: &Workspace, findings: Vec<Finding>) -> Report {
    let mut report = Report::default();
    let mut used = std::collections::BTreeSet::new(); // (rel, waiver line)
    for finding in findings {
        let waiver = ws
            .files
            .iter()
            .find(|f| f.rel == finding.rel)
            .and_then(|f| {
                f.waivers
                    .iter()
                    .find(|w| w.lint == finding.lint && w.covers.contains(&finding.line))
            });
        match waiver {
            Some(w) => {
                used.insert((finding.rel.clone(), w.line));
                report.waived.push(Waived {
                    finding,
                    reason: w.reason.clone(),
                });
            }
            None => report.active.push(finding),
        }
    }
    for file in &ws.files {
        for w in &file.waivers {
            if !used.contains(&(file.rel.clone(), w.line)) {
                report.unused_waivers.push(Finding {
                    lint: "unused-waiver",
                    rel: file.rel.clone(),
                    line: w.line,
                    message: format!(
                        "waiver for `{}` suppresses nothing — remove it or fix the reference",
                        w.lint
                    ),
                });
            }
        }
    }
    report
        .active
        .sort_by(|a, b| (a.lint, &a.rel, a.line).cmp(&(b.lint, &b.rel, b.line)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waivers_suppress_and_stale_waivers_fire() {
        let ws = Workspace::from_sources(
            &[(
                "crates/core/src/x.rs",
                "// lint:allow(determinism): ok\nlet a = 1;\n// lint:allow(determinism): stale\nlet b = 2;\n",
            )],
            &[],
        );
        let findings = vec![Finding {
            lint: "determinism",
            rel: "crates/core/src/x.rs".into(),
            line: 2,
            message: "violation".into(),
        }];
        let report = apply_waivers(&ws, findings);
        assert_eq!(report.active.len(), 0);
        assert_eq!(report.waived.len(), 1);
        assert_eq!(report.waived[0].reason, "ok");
        assert_eq!(report.unused_waivers.len(), 1);
        assert!(!report.is_clean());
        assert!(report.render().contains("stale waiver"));
    }
}
