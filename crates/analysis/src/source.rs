//! Workspace model: lexed source files, documentation files, and waivers.

use crate::lexer::{self, Comment, Token};
use std::path::Path;

/// An inline waiver: `// lint:allow(<name>): reason`.
///
/// A waiver covers the line it is written on and the next line that carries
/// code, so both trailing (`stmt; // lint:allow(...)`) and preceding
/// (waiver on its own line above the statement) placements work. Every
/// waiver must suppress at least one finding or the suite reports it as
/// `unused-waiver` — the waiver list doubles as an inventory of every
/// intentional exception, and stale entries would rot that inventory.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The lint this waiver suppresses.
    pub lint: String,
    /// Why the exception is intentional (required).
    pub reason: String,
    /// Line the waiver comment starts on.
    pub line: u32,
    /// Lines this waiver covers (its own and the next code line).
    pub covers: Vec<u32>,
}

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, unix-style.
    pub rel: String,
    /// Workspace crate the file belongs to (`core`, `paxos`, ... or `root`
    /// for the top-level package).
    pub krate: String,
    /// Raw text (used by text-level checks like metrics-completeness).
    pub text: String,
    /// Token stream with test code marked.
    pub tokens: Vec<Token>,
    /// Waivers declared in this file.
    pub waivers: Vec<Waiver>,
}

/// A documentation file checked by text-level lints.
#[derive(Debug)]
pub struct DocFile {
    /// Path relative to the workspace root.
    pub rel: String,
    /// Raw text.
    pub text: String,
}

/// Everything the lints look at.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Lexed Rust sources.
    pub files: Vec<SourceFile>,
    /// Markdown documentation.
    pub docs: Vec<DocFile>,
}

impl SourceFile {
    /// Lex and model one source file from its text.
    pub fn parse(rel: &str, text: String) -> SourceFile {
        let (mut tokens, comments) = lexer::lex(&text);
        lexer::mark_test_code(&mut tokens);
        let waivers = parse_waivers(&comments, &tokens);
        SourceFile {
            rel: rel.to_string(),
            krate: crate_of(rel),
            text,
            tokens,
            waivers,
        }
    }
}

impl Workspace {
    /// Build a workspace from in-memory `(relative path, text)` pairs —
    /// used by the fixture tests.
    pub fn from_sources(sources: &[(&str, &str)], docs: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: sources
                .iter()
                .map(|(rel, text)| SourceFile::parse(rel, (*text).to_string()))
                .collect(),
            docs: docs
                .iter()
                .map(|(rel, text)| DocFile {
                    rel: (*rel).to_string(),
                    text: (*text).to_string(),
                })
                .collect(),
        }
    }

    /// Load the live workspace rooted at `root`: every `.rs` file under the
    /// protocol crates' `src/` directories plus the root package's `src/`,
    /// and the benchmark schema document. Shim crates are skipped (they
    /// stand in for external dependencies and are not simnet-reachable
    /// protocol code), as is this analysis crate itself (its fixtures are
    /// deliberately full of violations).
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let crate_srcs = [
            "crates/simnet/src",
            "crates/mvkv/src",
            "crates/walog/src",
            "crates/paxos/src",
            "crates/storage/src",
            "crates/core/src",
            "crates/workload/src",
            "crates/bench/src",
            "src",
        ];
        for dir in crate_srcs {
            collect_rs(&root.join(dir), root, &mut files)?;
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        let mut docs = Vec::new();
        let doc = "docs/BENCHMARKS.md";
        let path = root.join(doc);
        if path.is_file() {
            docs.push(DocFile {
                rel: doc.to_string(),
                text: std::fs::read_to_string(path)?,
            });
        }
        Ok(Workspace { files, docs })
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path)?;
            out.push(SourceFile::parse(&rel, text));
        }
    }
    Ok(())
}

/// The workspace crate a relative path belongs to.
fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "root".to_string()
}

/// Extract `lint:allow(...)` waivers from comments. A waiver covers its own
/// line and the next line that carries a token.
fn parse_waivers(comments: &[Comment], tokens: &[Token]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for comment in comments {
        let Some(at) = comment.text.find("lint:allow(") else {
            continue;
        };
        let after = &comment.text[at + "lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let lint = after[..close].trim().to_string();
        let reason = after[close + 1..]
            .trim_start_matches(':')
            .trim()
            .to_string();
        let mut covers = vec![comment.line];
        if let Some(next) = tokens
            .iter()
            .map(|t| t.line)
            .filter(|l| *l > comment.line)
            .min()
        {
            covers.push(next);
        }
        out.push(Waiver {
            lint,
            reason,
            line: comment.line,
            covers,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_covers_its_line_and_the_next_code_line() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "// lint:allow(determinism): wall clock is the point\nlet a = 1;\nlet b = 2; // lint:allow(timer-refire): never crashed\n".to_string(),
        );
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].lint, "determinism");
        assert_eq!(f.waivers[0].reason, "wall clock is the point");
        assert!(f.waivers[0].covers.contains(&1) && f.waivers[0].covers.contains(&2));
        assert_eq!(f.waivers[1].lint, "timer-refire");
        assert!(f.waivers[1].covers.contains(&3));
    }

    #[test]
    fn crate_names_resolve_from_paths() {
        assert_eq!(crate_of("crates/core/src/service.rs"), "core");
        assert_eq!(crate_of("src/lib.rs"), "root");
    }

    #[test]
    fn fixture_workspaces_build_from_memory() {
        let ws = Workspace::from_sources(
            &[("crates/core/src/a.rs", "fn f() {}")],
            &[("docs/BENCHMARKS.md", "# schema")],
        );
        assert_eq!(ws.files.len(), 1);
        assert_eq!(ws.files[0].krate, "core");
        assert_eq!(ws.docs.len(), 1);
    }
}
