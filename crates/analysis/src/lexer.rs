//! A hand-rolled Rust token scanner (same spirit as `bench_merge`'s JSON
//! scanner: no registry access means no `syn`, so the lint suite works on a
//! token stream, not a syntax tree).
//!
//! The scanner understands exactly as much Rust as the lints need: idents,
//! numbers, string/char literals (including raw strings and byte strings),
//! lifetimes, nested block comments, and a small set of multi-character
//! operators (`::`, `=>`, `==`, `!=`, `->`, `..`, `<=`, `>=`, `&&`, `||`).
//! Everything else is a single-character punct. Comments are returned
//! separately so the waiver parser can read them; they never appear in the
//! token stream, which means prose like "Instant of the next event" can
//! never trip a lint.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `set_timer`, ...).
    Ident,
    /// A numeric literal (dots are *not* consumed: `1.5` lexes as three
    /// tokens, which is fine — no lint reads float values).
    Number,
    /// A string literal (regular, raw, byte or raw-byte). Text is the
    /// contents without quotes.
    Str,
    /// A character literal.
    CharLit,
    /// A lifetime (`'a`).
    Lifetime,
    /// An operator or delimiter; multi-character for the handful of
    /// compound operators the lints match on.
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokKind,
    /// Lexeme text (contents only for strings).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// True when the token sits inside `#[cfg(test)]` / `#[test]` items or
    /// a `mod tests { ... }` block (marked in a post-pass, see
    /// [`mark_test_code`]).
    pub in_test: bool,
}

/// A comment (line or block) with the line it starts on.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
    /// 1-based source line the comment starts on.
    pub line: u32,
}

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let bytes: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let push = |tokens: &mut Vec<Token>, kind: TokKind, text: String, line: u32| {
        tokens.push(Token {
            kind,
            text,
            line,
            in_test: false,
        });
    };

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != '\n' {
                    j += 1;
                }
                comments.push(Comment {
                    text: bytes[start..j].iter().collect(),
                    line,
                });
                i = j;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1;
                let mut j = start;
                while j < n && depth > 0 {
                    if bytes[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if j + 1 < n && bytes[j] == '/' && bytes[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && bytes[j] == '*' && bytes[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                comments.push(Comment {
                    text: bytes[start..j.saturating_sub(2).max(start)]
                        .iter()
                        .collect(),
                    line: start_line,
                });
                i = j;
            }
            '"' => {
                let (text, nl, j) = scan_string(&bytes, i + 1);
                push(&mut tokens, TokKind::Str, text, line);
                line += nl;
                i = j;
            }
            '\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime.
                if i + 1 < n && (bytes[i + 1].is_alphanumeric() || bytes[i + 1] == '_') {
                    let mut j = i + 1;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    if j < n && bytes[j] == '\'' {
                        // `'a'` — a char literal.
                        push(
                            &mut tokens,
                            TokKind::CharLit,
                            bytes[i + 1..j].iter().collect(),
                            line,
                        );
                        i = j + 1;
                    } else {
                        push(
                            &mut tokens,
                            TokKind::Lifetime,
                            bytes[i + 1..j].iter().collect(),
                            line,
                        );
                        i = j;
                    }
                } else if i + 1 < n && bytes[i + 1] == '\\' {
                    // Escaped char literal `'\n'`, `'\''`, `'\u{...}'`.
                    let mut j = i + 2;
                    if j < n {
                        j += 1; // the escaped character
                    }
                    if j < n && bytes[j - 1] == 'u' && bytes[j] == '{' {
                        while j < n && bytes[j] != '}' {
                            j += 1;
                        }
                        j += 1;
                    }
                    while j < n && bytes[j] != '\'' {
                        j += 1;
                    }
                    push(&mut tokens, TokKind::CharLit, String::new(), line);
                    i = j + 1;
                } else {
                    // Bare quote (shouldn't happen in valid Rust): skip.
                    i += 1;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let word: String = bytes[i..j].iter().collect();
                // Raw / byte string prefixes: r"..", r#".."#, b"..", br#"..
                let is_raw_prefix = matches!(word.as_str(), "r" | "b" | "br" | "rb");
                if is_raw_prefix && j < n && (bytes[j] == '"' || bytes[j] == '#') {
                    let mut hashes = 0usize;
                    let mut k = j;
                    while k < n && bytes[k] == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < n && bytes[k] == '"' {
                        let raw = word.contains('r');
                        if raw {
                            let (text, nl, end) = scan_raw_string(&bytes, k + 1, hashes);
                            push(&mut tokens, TokKind::Str, text, line);
                            line += nl;
                            i = end;
                        } else {
                            let (text, nl, end) = scan_string(&bytes, k + 1);
                            push(&mut tokens, TokKind::Str, text, line);
                            line += nl;
                            i = end;
                        }
                        continue;
                    }
                    // `r#ident` raw identifier.
                    if hashes == 1 && k < n && (bytes[k].is_alphabetic() || bytes[k] == '_') {
                        let mut m = k;
                        while m < n && (bytes[m].is_alphanumeric() || bytes[m] == '_') {
                            m += 1;
                        }
                        push(
                            &mut tokens,
                            TokKind::Ident,
                            bytes[k..m].iter().collect(),
                            line,
                        );
                        i = m;
                        continue;
                    }
                }
                push(&mut tokens, TokKind::Ident, word, line);
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                push(
                    &mut tokens,
                    TokKind::Number,
                    bytes[i..j].iter().collect(),
                    line,
                );
                i = j;
            }
            _ => {
                // Compound operators the lints care about; everything else
                // is a single character.
                let two: String = bytes[i..n.min(i + 2)].iter().collect();
                let op = match two.as_str() {
                    "::" | "=>" | "==" | "!=" | "->" | ".." | "<=" | ">=" | "&&" | "||" => {
                        Some(two)
                    }
                    _ => None,
                };
                if let Some(op) = op {
                    push(&mut tokens, TokKind::Punct, op, line);
                    i += 2;
                } else {
                    push(&mut tokens, TokKind::Punct, c.to_string(), line);
                    i += 1;
                }
            }
        }
    }
    (tokens, comments)
}

/// Scan a regular (escaped) string starting just after the opening quote.
/// Returns (contents, newlines consumed, index just past the closing quote).
fn scan_string(bytes: &[char], start: usize) -> (String, u32, usize) {
    let mut j = start;
    let mut newlines = 0u32;
    let n = bytes.len();
    let mut text = String::new();
    while j < n {
        match bytes[j] {
            '\\' => {
                j += 2; // skip the escaped character (good enough: `\"`, `\\`, ...)
            }
            '"' => {
                return (text, newlines, j + 1);
            }
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                text.push(c);
                j += 1;
            }
        }
    }
    (text, newlines, j)
}

/// Scan a raw string with `hashes` trailing hash marks, starting just after
/// the opening quote.
fn scan_raw_string(bytes: &[char], start: usize, hashes: usize) -> (String, u32, usize) {
    let n = bytes.len();
    let mut j = start;
    let mut newlines = 0u32;
    let mut text = String::new();
    while j < n {
        if bytes[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && bytes[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (text, newlines, k);
            }
        }
        if bytes[j] == '\n' {
            newlines += 1;
        }
        text.push(bytes[j]);
        j += 1;
    }
    (text, newlines, j)
}

/// Mark tokens inside test-only code: `#[cfg(test)]` items, `#[test]`
/// functions and `mod tests { ... }` blocks. Lints skip marked tokens —
/// tests may legitimately use wall clocks, unordered iteration, or
/// construct unhandled message variants.
pub fn mark_test_code(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        let is_cfg_test = tokens[i].text == "#"
            && matches_seq(tokens, i + 1, &["[", "cfg", "(", "test", ")", "]"]);
        let is_test_attr = tokens[i].text == "#" && matches_seq(tokens, i + 1, &["[", "test", "]"]);
        let is_mod_tests = tokens[i].kind == TokKind::Ident
            && tokens[i].text == "mod"
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text == "tests")
            && tokens.get(i + 2).is_some_and(|t| t.text == "{");
        if is_cfg_test || is_test_attr {
            // Skip past this attribute and any further attributes, then
            // mark through the end of the item (`;` or the matching brace).
            let mut j = skip_attr(tokens, i);
            while j < tokens.len() && tokens[j].text == "#" {
                j = skip_attr(tokens, j);
            }
            let end = item_end(tokens, j);
            for t in tokens[i..end].iter_mut() {
                t.in_test = true;
            }
            i = end;
        } else if is_mod_tests {
            let end = item_end(tokens, i);
            for t in tokens[i..end].iter_mut() {
                t.in_test = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
}

/// True when `tokens[at..]` begins with exactly the given texts.
fn matches_seq(tokens: &[Token], at: usize, texts: &[&str]) -> bool {
    texts
        .iter()
        .enumerate()
        .all(|(k, want)| tokens.get(at + k).is_some_and(|t| t.text == *want))
}

/// Index just past an attribute starting at `#`.
fn skip_attr(tokens: &[Token], at: usize) -> usize {
    let mut j = at + 1; // at the `[`
    if tokens.get(j).map(|t| t.text.as_str()) != Some("[") {
        return at + 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index just past the item starting at `at`: either just past the first
/// top-level `;`, or just past the matching `}` of the first brace block.
fn item_end(tokens: &[Token], at: usize) -> usize {
    let mut j = at;
    let mut depth = 0i32;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index just past a balanced group opening at `at` (which must be `(`,
/// `[` or `{`); `at + 1` if the token there is not an opener.
pub fn skip_group(tokens: &[Token], at: usize) -> usize {
    let (open, close) = match tokens.get(at).map(|t| t.text.as_str()) {
        Some("(") => ("(", ")"),
        Some("[") => ("[", "]"),
        Some("{") => ("{", "}"),
        _ => return at + 1,
    };
    let mut depth = 0i32;
    let mut j = at;
    while j < tokens.len() {
        if tokens[j].text == open {
            depth += 1;
        } else if tokens[j].text == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).0.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_ops_and_paths() {
        assert_eq!(
            texts("std::time::Instant::now()"),
            vec!["std", "::", "time", "::", "Instant", "::", "now", "(", ")"]
        );
        assert_eq!(
            texts("a => b | c == d"),
            vec!["a", "=>", "b", "|", "c", "==", "d"]
        );
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let (tokens, comments) = lex("// Instant of the next event\nlet x = 1; /* block\nmore */");
        assert!(tokens.iter().all(|t| t.text != "Instant"));
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 1);
        assert!(comments[0].text.contains("Instant"));
        assert_eq!(comments[1].line, 2);
    }

    #[test]
    fn strings_and_chars_and_lifetimes() {
        let (tokens, _) =
            lex(r#"let s = "Instant \" quoted"; let c = 'x'; fn f<'a>(v: &'a str) {}"#);
        let strs: Vec<_> = tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(tokens.iter().any(|t| t.kind == TokKind::CharLit));
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        // The `Instant` inside the string literal is not an ident token.
        assert!(!tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "Instant"));
    }

    #[test]
    fn raw_strings() {
        let (tokens, _) = lex(r##"let s = r#"Instant "raw" text"#; let t = r"plain";"##);
        let strs: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].contains("Instant"));
        assert!(!tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "Instant"));
    }

    #[test]
    fn lines_are_tracked() {
        let (tokens, _) = lex("a\nb\n\nc");
        let lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn test_code_is_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { let x = 1; }\n}\nfn live2() {}";
        let (mut tokens, _) = lex(src);
        mark_test_code(&mut tokens);
        let live: Vec<_> = tokens
            .iter()
            .filter(|t| !t.in_test)
            .map(|t| t.text.clone())
            .collect();
        assert!(live.contains(&"live".to_string()));
        assert!(live.contains(&"live2".to_string()));
        assert!(!live.contains(&"x".to_string()));
    }

    #[test]
    fn test_attr_marks_single_fn() {
        let src = "#[test]\nfn t() { wall(); }\nfn live() {}";
        let (mut tokens, _) = lex(src);
        mark_test_code(&mut tokens);
        assert!(tokens.iter().any(|t| t.text == "wall" && t.in_test));
        assert!(tokens.iter().any(|t| t.text == "live" && !t.in_test));
    }

    #[test]
    fn skip_group_balances() {
        let (tokens, _) = lex("(a, (b, c), d) e");
        let end = skip_group(&tokens, 0);
        assert_eq!(tokens[end].text, "e");
    }
}
