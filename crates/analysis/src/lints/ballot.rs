//! `ballot-discipline` — recovery ballots carry `RECOVERY_BALLOT_BIT` in
//! their proposer id so a recovering leader's ballots outrank its own
//! pre-crash ballots without colliding with live proposers. Any equality
//! comparison against a ballot's `.proposer` that forgets to mask the bit
//! silently misidentifies recovery ballots (e.g. "is this my ballot?"
//! returns false for the node's own recovery proposals).
//!
//! The lint flags every statement in `core`/`paxos` that reads `.proposer`
//! and contains `==` or `!=` without also mentioning
//! `RECOVERY_BALLOT_BIT`. The file declaring `struct Ballot` is exempt —
//! it owns the raw representation.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::Workspace;

const SCOPE: [&str; 2] = ["core", "paxos"];

/// Run the ballot-discipline lint over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let declaring: Vec<&str> = ws
        .files
        .iter()
        .filter(|f| declares_ballot(f))
        .map(|f| f.rel.as_str())
        .collect();
    let mut out = Vec::new();
    for file in &ws.files {
        if !SCOPE.contains(&file.krate.as_str()) || declaring.contains(&file.rel.as_str()) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].in_test || toks[i].text != "proposer" || i == 0 || toks[i - 1].text != "." {
                continue;
            }
            // Statement = tokens between the nearest `;`/`{`/`}` boundaries.
            let start = (0..i)
                .rev()
                .find(|&j| matches!(toks[j].text.as_str(), ";" | "{" | "}"))
                .map_or(0, |j| j + 1);
            let end = (i..toks.len())
                .find(|&j| matches!(toks[j].text.as_str(), ";" | "{" | "}"))
                .unwrap_or(toks.len());
            let stmt = &toks[start..end];
            let compares = stmt.iter().any(|t| t.text == "==" || t.text == "!=");
            let masked = stmt.iter().any(|t| t.text == "RECOVERY_BALLOT_BIT");
            if compares && !masked {
                out.push(Finding {
                    lint: super::BALLOT_DISCIPLINE,
                    rel: file.rel.clone(),
                    line: toks[i].line,
                    message: "`.proposer` equality comparison without masking RECOVERY_BALLOT_BIT — recovery ballots will be misidentified".to_string(),
                });
            }
        }
    }
    out
}

fn declares_ballot(file: &crate::source::SourceFile) -> bool {
    file.tokens
        .windows(2)
        .any(|w| w[0].text == "struct" && w[1].kind == TokKind::Ident && w[1].text == "Ballot")
}

#[cfg(test)]
mod tests {
    use super::*;

    const BALLOT: &str = "pub struct Ballot { pub round: u64, pub proposer: u64 }\n\
                          impl Ballot { fn mine(&self, id: u64) -> bool { self.proposer == id } }";

    #[test]
    fn unmasked_comparison_fires() {
        let ws = Workspace::from_sources(
            &[
                ("crates/paxos/src/ballot.rs", BALLOT),
                (
                    "crates/paxos/src/acceptor.rs",
                    "fn is_mine(b: &Ballot, id: u64) -> bool { b.proposer == id }",
                ),
            ],
            &[],
        );
        let f = run(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].rel.ends_with("acceptor.rs"));
    }

    #[test]
    fn masked_comparison_is_clean() {
        let ws = Workspace::from_sources(
            &[
                ("crates/paxos/src/ballot.rs", BALLOT),
                (
                    "crates/paxos/src/acceptor.rs",
                    "fn is_mine(b: &Ballot, id: u64) -> bool { (b.proposer & !RECOVERY_BALLOT_BIT) == id }",
                ),
            ],
            &[],
        );
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn non_comparison_reads_are_clean() {
        let ws = Workspace::from_sources(
            &[
                ("crates/paxos/src/ballot.rs", BALLOT),
                (
                    "crates/paxos/src/acceptor.rs",
                    "fn owner(b: &Ballot) -> u64 { b.proposer }\nfn bigger(a: &Ballot, b: &Ballot) -> bool { a.proposer > b.proposer }",
                ),
            ],
            &[],
        );
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn declaring_file_is_exempt() {
        let ws = Workspace::from_sources(&[("crates/paxos/src/ballot.rs", BALLOT)], &[]);
        assert!(run(&ws).is_empty());
    }
}
