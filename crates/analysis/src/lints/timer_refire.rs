//! `timer-refire` — crash recovery must re-arm every timer namespace.
//!
//! The simnet clears an actor's pending timers when it crashes; an actor
//! whose recovery path forgets to re-arm a timer tag silently stalls that
//! state machine forever (the PR 7 fast-path bug class). This lint treats
//! every all-caps ident containing `TAG` that appears inside a
//! `set_timer(...)` argument list as a timer namespace, and requires each
//! namespace to be reachable from the file's recovery entry points:
//! `fn on_recover` or `fn refire_timers`, either directly in their bodies
//! or in the body of a same-file function those bodies call (one level of
//! indirection covers the `on_recover -> ensure_janitor -> JANITOR_TAG`
//! shape without needing a full call graph).
//!
//! Files that set tagged timers but define no recovery entry point at all
//! are findings too — harnesses that genuinely never restart mid-run waive
//! them, which keeps the exception explicit and inventoried.

use crate::findings::Finding;
use crate::lexer::{self, TokKind, Token};
use crate::source::Workspace;

/// Run the timer-refire lint over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        let toks = &file.tokens;
        let tags = tags_set_in(toks);
        if tags.is_empty() {
            continue;
        }
        let fns = fn_bodies(toks);
        let mut covered = std::collections::BTreeSet::new();
        let mut has_recovery = false;
        for entry in ["on_recover", "refire_timers"] {
            let Some(&(start, end)) = fns.get(entry) else {
                continue;
            };
            has_recovery = true;
            collect_idents(toks, start, end, &mut covered);
            // One level of indirection: same-file functions the entry calls.
            for i in start..end {
                if toks[i].kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.text == "(")
                {
                    if let Some(&(cs, ce)) = fns.get(toks[i].text.as_str()) {
                        collect_idents(toks, cs, ce, &mut covered);
                    }
                }
            }
        }
        for (tag, line) in &tags {
            let message = if !has_recovery {
                format!(
                    "timer tag `{tag}` is set but this actor has no `on_recover`/`refire_timers` to re-arm it after a crash"
                )
            } else if !covered.contains(tag.as_str()) {
                format!(
                    "timer tag `{tag}` is set but never re-armed by `on_recover`/`refire_timers` — it dies with the first crash"
                )
            } else {
                continue;
            };
            out.push(Finding {
                lint: super::TIMER_REFIRE,
                rel: file.rel.clone(),
                line: *line,
                message,
            });
        }
    }
    out
}

/// Tag namespaces set in this file: all-caps `*TAG*` idents appearing inside
/// `set_timer(...)` argument lists, with the first line each is seen on.
fn tags_set_in(toks: &[Token]) -> Vec<(String, u32)> {
    let mut tags: Vec<(String, u32)> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].in_test || toks[i].text != "set_timer" {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|t| t.text == "(") else {
            continue;
        };
        let _ = open;
        let end = lexer::skip_group(toks, i + 1);
        for t in &toks[i + 2..end.min(toks.len())] {
            if t.kind == TokKind::Ident
                && t.text.contains("TAG")
                && t.text.chars().all(|c| c.is_ascii_uppercase() || c == '_')
                && !tags.iter().any(|(name, _)| *name == t.text)
            {
                tags.push((t.text.clone(), t.line));
            }
        }
    }
    tags
}

/// Map each non-test `fn name` to its body token range `(start, end)`.
fn fn_bodies(toks: &[Token]) -> std::collections::BTreeMap<&str, (usize, usize)> {
    let mut out = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "fn"
            && !toks[i].in_test
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
        {
            let name = toks[i + 1].text.as_str();
            // Find the body brace, skipping the signature. Generic bounds and
            // return types may themselves contain no braces before the body.
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                if toks[j].text == "(" || toks[j].text == "[" {
                    j = lexer::skip_group(toks, j);
                } else {
                    j += 1;
                }
            }
            if j < toks.len() && toks[j].text == "{" {
                let end = lexer::skip_group(toks, j);
                out.insert(name, (j + 1, end.saturating_sub(1)));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn collect_idents<'t>(
    toks: &'t [Token],
    start: usize,
    end: usize,
    out: &mut std::collections::BTreeSet<&'t str>,
) {
    for t in &toks[start..end.min(toks.len())] {
        if t.kind == TokKind::Ident {
            out.insert(t.text.as_str());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(&[("crates/core/src/x.rs", src)], &[]);
        run(&ws)
    }

    #[test]
    fn unrefired_tag_fires() {
        let src = "const TICK_TAG: u64 = 1; const PING_TAG: u64 = 2;\n\
                   impl A { fn start(&mut self) { self.set_timer(d, TICK_TAG); self.set_timer(d, PING_TAG); }\n\
                   fn on_recover(&mut self) { self.set_timer(d, TICK_TAG); } }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("PING_TAG"));
        assert!(f[0].message.contains("never re-armed"));
    }

    #[test]
    fn directly_refired_tags_are_clean() {
        let src = "const TICK_TAG: u64 = 1;\n\
                   impl A { fn start(&mut self) { self.set_timer(d, TICK_TAG); }\n\
                   fn refire_timers(&mut self) { self.set_timer(d, TICK_TAG); } }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn one_level_of_indirection_counts() {
        let src = "const JANITOR_TAG: u64 = 1;\n\
                   impl A { fn ensure_janitor(&mut self) { self.set_timer(d, JANITOR_TAG); }\n\
                   fn start(&mut self) { self.ensure_janitor(); }\n\
                   fn on_recover(&mut self) { self.ensure_janitor(); } }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn missing_recovery_entry_point_fires() {
        let src = "const TICK_TAG: u64 = 1;\n\
                   impl A { fn start(&mut self) { self.set_timer(d, TICK_TAG); } }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no `on_recover`"));
    }

    #[test]
    fn non_tag_consts_in_set_timer_args_are_ignored() {
        let src = "const TICK_US: u64 = 50; const TICK_TAG: u64 = 1;\n\
                   impl A { fn start(&mut self) { self.set_timer(SimDuration::from_micros(TICK_US), TICK_TAG); }\n\
                   fn on_recover(&mut self) { self.set_timer(SimDuration::from_micros(TICK_US), TICK_TAG); } }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn files_without_timers_are_clean() {
        assert!(findings("fn f() {}").is_empty());
    }
}
