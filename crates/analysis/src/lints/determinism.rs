//! `determinism` — the simnet's replay guarantee is only as strong as the
//! absence of hidden entropy in simnet-reachable protocol code.
//!
//! In crates `core`, `paxos`, `walog` and `simnet` this lint flags:
//!
//! * wall-clock time sources (`std::time::Instant`, `SystemTime`) — the
//!   simulation owns time; reading the host clock forks the timeline,
//! * unseeded randomness (`thread_rng`, `from_entropy`) — every RNG must
//!   derive from the run seed,
//! * order-sensitive iteration over `HashMap`/`HashSet` (`iter`, `keys`,
//!   `values`, `drain`, `retain`, `for x in &map`, ...) — std's hash maps
//!   seed their hasher from process entropy, so iteration order differs
//!   run to run; anything that feeds message order, timer order or the
//!   decided log must iterate a `BTreeMap`/`BTreeSet` or sort first.
//!
//! The iteration check is name-based: it collects every binding or field
//! declared with a `HashMap`/`HashSet` type (or initialized from
//! `HashMap::new()`-style constructors) in a file, then flags iteration
//! method calls and `for` loops over those names. `get`/`insert`/
//! `contains_key` and friends stay silent — point lookups are order-free.

use crate::findings::Finding;
use crate::lexer::{TokKind, Token};
use crate::source::Workspace;

const SCOPE: [&str; 4] = ["core", "paxos", "walog", "simnet"];

const BANNED_IDENTS: [(&str, &str); 4] = [
    (
        "Instant",
        "wall-clock time source `Instant` in simnet-reachable code",
    ),
    (
        "SystemTime",
        "wall-clock time source `SystemTime` in simnet-reachable code",
    ),
    (
        "thread_rng",
        "unseeded RNG `thread_rng` in simnet-reachable code",
    ),
    (
        "from_entropy",
        "unseeded RNG `from_entropy` in simnet-reachable code",
    ),
];

const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Run the determinism lint over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !SCOPE.contains(&file.krate.as_str()) {
            continue;
        }
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.in_test || t.kind != TokKind::Ident {
                continue;
            }
            if let Some((_, msg)) = BANNED_IDENTS.iter().find(|(name, _)| *name == t.text) {
                // `use std::time::{Instant, ...}` and every expression use
                // fire equally: the import alone is a liability.
                out.push(Finding {
                    lint: super::DETERMINISM,
                    rel: file.rel.clone(),
                    line: t.line,
                    message: (*msg).to_string(),
                });
            }
            let _ = i;
        }
        let hashed = hash_typed_names(toks);
        if hashed.is_empty() {
            continue;
        }
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.in_test || t.kind != TokKind::Ident || !hashed.contains(&t.text) {
                continue;
            }
            // `name.iter()` / `name.drain()` / ...
            if toks.get(i + 1).is_some_and(|n| n.text == ".")
                && toks
                    .get(i + 2)
                    .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
                && toks.get(i + 3).is_some_and(|p| p.text == "(")
            {
                out.push(Finding {
                    lint: super::DETERMINISM,
                    rel: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "order-sensitive `{}` iteration over hash-ordered `{}` — use a BTreeMap/BTreeSet or sort before iterating",
                        toks[i + 2].text, t.text
                    ),
                });
            }
            // `for x in &name {` / `for x in name {` / `for x in &mut self.name {`
            if toks.get(i + 1).is_some_and(|n| n.text == "{") && preceded_by_in(toks, i) {
                out.push(Finding {
                    lint: super::DETERMINISM,
                    rel: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "order-sensitive `for` loop over hash-ordered `{}` — use a BTreeMap/BTreeSet or sort before iterating",
                        t.text
                    ),
                });
            }
        }
    }
    out
}

/// Walk back from a candidate loop subject over `&`, `mut`, `self` and `.`
/// to see whether the expression is the object of a `for ... in`.
fn preceded_by_in(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].text.as_str() {
            "&" | "mut" | "self" | "." => continue,
            "in" => return toks[j].kind == TokKind::Ident,
            _ => return false,
        }
    }
    false
}

/// Names declared with a `HashMap`/`HashSet` type (field or binding type
/// annotations, plus `let name = HashMap::new()`-style initializers).
fn hash_typed_names(toks: &[Token]) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over a path prefix (`std :: collections ::`), references
        // and `mut` to find `name :` or `let name =`.
        let mut j = i;
        while j >= 2 && toks[j - 1].text == "::" && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        while j >= 1 {
            match toks[j - 1].text.as_str() {
                "&" | "mut" => j -= 1,
                _ => break,
            }
            continue;
        }
        if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].kind == TokKind::Ident {
            names.insert(toks[j - 2].text.clone());
        } else if j >= 2 && toks[j - 1].text == "=" && toks[j - 2].kind == TokKind::Ident {
            let is_let = toks.get(j.wrapping_sub(3)).is_some_and(|t| t.text == "let")
                || (toks.get(j.wrapping_sub(3)).is_some_and(|t| t.text == "mut")
                    && toks.get(j.wrapping_sub(4)).is_some_and(|t| t.text == "let"));
            if is_let {
                names.insert(toks[j - 2].text.clone());
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(&[("crates/core/src/x.rs", src)], &[]);
        run(&ws)
    }

    #[test]
    fn wall_clock_and_unseeded_rng_fire() {
        let f = findings("use std::time::Instant;\nfn f() { let r = thread_rng(); }");
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("Instant"));
        assert!(f[1].message.contains("thread_rng"));
    }

    #[test]
    fn hash_iteration_fires_btree_does_not() {
        let src = "struct S { m: HashMap<u64, u64>, b: BTreeMap<u64, u64> }\n\
                   impl S { fn f(&self) { for k in self.m.keys() {} for k in self.b.keys() {} } }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`m`"));
    }

    #[test]
    fn for_loop_over_hash_set_fires() {
        let src = "struct S { s: HashSet<u64> }\nimpl S { fn f(&self) { for k in &self.s {} } }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("for"));
    }

    #[test]
    fn let_initializer_declares_the_name() {
        let src = "fn f() { let m = HashMap::new(); for k in m.values() {} }";
        assert_eq!(findings(src).len(), 1);
    }

    #[test]
    fn lookups_are_silent_and_tests_are_skipped() {
        let src = "struct S { m: HashMap<u64, u64> }\n\
                   impl S { fn f(&self) { self.m.get(&1); self.m.contains_key(&2); } }\n\
                   #[cfg(test)]\nmod tests { use std::time::Instant; fn t(m: HashMap<u64,u64>) { m.iter(); } }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let ws = Workspace::from_sources(
            &[("crates/workload/src/x.rs", "use std::time::Instant;")],
            &[],
        );
        assert!(run(&ws).is_empty());
    }
}
