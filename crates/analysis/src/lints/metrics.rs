//! `metrics-completeness` — a counter nobody exports is a counter nobody
//! reads. Every field of `RunMetrics` must reach two places:
//!
//! * the JSON export (`report.rs` — its text must mention the field name),
//! * the documented schema (`docs/BENCHMARKS.md`).
//!
//! The check is substring-based on purpose: an export key such as
//! `mean_window_occupancy` legitimately covers the field
//! `window_occupancy`, and demanding token-exact matches would force
//! export keys to mirror internal field names.

use crate::findings::Finding;
use crate::lexer::{self, TokKind};
use crate::source::Workspace;

/// Run the metrics-completeness lint over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let report_text: String = ws
        .files
        .iter()
        .filter(|f| f.rel.ends_with("/report.rs"))
        .map(|f| f.text.as_str())
        .collect();
    let schema_text: String = ws
        .docs
        .iter()
        .filter(|d| d.rel.ends_with("BENCHMARKS.md"))
        .map(|d| d.text.as_str())
        .collect();
    for file in &ws.files {
        for (name, line) in run_metrics_fields(file) {
            if !report_text.is_empty() && !report_text.contains(&name) {
                out.push(Finding {
                    lint: super::METRICS_COMPLETENESS,
                    rel: file.rel.clone(),
                    line,
                    message: format!(
                        "`RunMetrics::{name}` is collected but missing from the JSON export (report.rs)"
                    ),
                });
            }
            if !schema_text.is_empty() && !schema_text.contains(&name) {
                out.push(Finding {
                    lint: super::METRICS_COMPLETENESS,
                    rel: file.rel.clone(),
                    line,
                    message: format!(
                        "`RunMetrics::{name}` is collected but undocumented in docs/BENCHMARKS.md"
                    ),
                });
            }
        }
    }
    out
}

/// Field names and declaration lines of a `struct RunMetrics` in `file`.
fn run_metrics_fields(file: &crate::source::SourceFile) -> Vec<(String, u32)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text != "struct"
            || toks[i].in_test
            || toks.get(i + 1).map(|n| n.text.as_str()) != Some("RunMetrics")
        {
            continue;
        }
        let mut j = i + 2;
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            j += 1;
        }
        if j >= toks.len() || toks[j].text != "{" {
            continue;
        }
        let end = lexer::skip_group(toks, j);
        let mut k = j + 1;
        while k < end.min(toks.len()) {
            let t = &toks[k];
            if t.text == "#" && toks.get(k + 1).is_some_and(|b| b.text == "[") {
                k = lexer::skip_group(toks, k + 1);
                continue;
            }
            if t.text == "pub" {
                k += 1;
                continue;
            }
            if t.kind == TokKind::Ident && toks.get(k + 1).is_some_and(|c| c.text == ":") {
                out.push((t.text.clone(), t.line));
                // Skip the type up to the field separator, stepping over any
                // bracketed groups so commas inside generics don't end early.
                k += 2;
                let mut depth = 0i32;
                while k < end {
                    match toks[k].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        "," if depth <= 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                k += 1;
            } else {
                k += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    const METRICS: &str = "pub struct RunMetrics { pub committed: u64, pub window_occupancy: Vec<(u64, usize)>, pub timed_out: u64 }";

    #[test]
    fn unexported_and_undocumented_fields_fire() {
        let ws = Workspace::from_sources(
            &[
                ("crates/core/src/metrics.rs", METRICS),
                (
                    "crates/bench/src/report.rs",
                    "fn export() { push(\"committed\"); push(\"mean_window_occupancy\"); }",
                ),
            ],
            &[(
                "docs/BENCHMARKS.md",
                "| committed | commits | \n| window_occupancy | samples |",
            )],
        );
        let f = run(&ws);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("timed_out"));
        assert!(f[0].message.contains("JSON export"));
        assert!(f[1].message.contains("timed_out"));
        assert!(f[1].message.contains("undocumented"));
    }

    #[test]
    fn substring_coverage_counts() {
        // `mean_window_occupancy` in the export covers `window_occupancy`.
        let ws = Workspace::from_sources(
            &[
                ("crates/core/src/metrics.rs", METRICS),
                (
                    "crates/bench/src/report.rs",
                    "fn export() { push(\"committed\"); push(\"mean_window_occupancy\"); push(\"timed_out\"); }",
                ),
            ],
            &[(
                "docs/BENCHMARKS.md",
                "committed, window_occupancy, timed_out",
            )],
        );
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn absent_report_or_docs_disable_the_check() {
        // A fixture workspace with no report.rs and no schema doc should not
        // drown in findings — each half of the check needs its target.
        let ws = Workspace::from_sources(&[("crates/core/src/metrics.rs", METRICS)], &[]);
        assert!(run(&ws).is_empty());
    }
}
