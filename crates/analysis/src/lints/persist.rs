//! `persist-before-ack` — acceptor replies must follow a persist call.
//!
//! The durable storage plane's central invariant is that an acceptor never
//! acknowledges a Promise or a vote until the corresponding WAL record is
//! on disk: a `PrepareReply`/`AcceptReply` sent before the `persist_*`
//! call would let the proposer count a quorum member whose state can
//! evaporate in a crash, which is exactly the lost-promise anomaly the WAL
//! exists to rule out. This lint finds every non-test *construction* of
//! `PaxosMsg::PrepareReply { .. }` / `PaxosMsg::AcceptReply { .. }` and
//! requires an earlier call to an ident starting with `persist` inside the
//! same function body. Match arms that *destructure* those variants
//! (proposer-side handling) are not constructions and are skipped — a
//! pattern is recognised by a `..` rest inside the braces or a `=>` / `|`
//! after them.
//!
//! In-memory harnesses that deliberately skip durability waive the finding
//! with `lint:allow(persist-before-ack)`, keeping the exception explicit.

use crate::findings::Finding;
use crate::lexer::{self, TokKind, Token};
use crate::source::Workspace;

/// Run the persist-before-ack lint over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        let toks = &file.tokens;
        let bodies = fn_body_ranges(toks);
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.in_test || (t.text != "PrepareReply" && t.text != "AcceptReply") {
                continue;
            }
            // Only the message variants carry the ack; `ProposerEvent::*`
            // constructions are the proposer ingesting replies, not acks.
            if i < 2 || toks[i - 1].text != "::" || toks[i - 2].text != "PaxosMsg" {
                continue;
            }
            if toks.get(i + 1).is_none_or(|n| n.text != "{") {
                continue;
            }
            let end = lexer::skip_group(toks, i + 1);
            if is_pattern(toks, i + 1, end) {
                continue;
            }
            // Innermost enclosing fn body (closures live inside their fn).
            let Some(&(start, _)) = bodies
                .iter()
                .filter(|(s, e)| *s <= i && i < *e)
                .max_by_key(|(s, _)| *s)
            else {
                continue;
            };
            let persisted = (start..i).any(|k| {
                toks[k].kind == TokKind::Ident
                    && toks[k].text.starts_with("persist")
                    && toks.get(k + 1).is_some_and(|n| n.text == "(")
            });
            if !persisted {
                out.push(Finding {
                    lint: super::PERSIST_BEFORE_ACK,
                    rel: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`PaxosMsg::{}` is constructed with no preceding `persist*(...)` call in this handler — the acceptor must be durable before it acks",
                        t.text
                    ),
                });
            }
        }
    }
    out
}

/// True when the brace group at `open..end` is a match *pattern* rather
/// than a struct-literal construction: a `..` rest pattern inside, or a
/// `=>` / `|` immediately after the closing brace.
fn is_pattern(toks: &[Token], open: usize, end: usize) -> bool {
    if toks[open + 1..end.min(toks.len())]
        .iter()
        .any(|t| t.text == "..")
    {
        return true;
    }
    toks.get(end)
        .is_some_and(|t| t.text == "=>" || t.text == "|")
}

/// Every non-test `fn` body as a token range `(start, end)`.
fn fn_body_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "fn"
            && !toks[i].in_test
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
        {
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                if toks[j].text == "(" || toks[j].text == "[" {
                    j = lexer::skip_group(toks, j);
                } else {
                    j += 1;
                }
            }
            if j < toks.len() && toks[j].text == "{" {
                let end = lexer::skip_group(toks, j);
                out.push((j + 1, end.saturating_sub(1)));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(&[("crates/core/src/x.rs", src)], &[]);
        run(&ws)
    }

    #[test]
    fn unpersisted_reply_fires() {
        let src = "fn on_prepare(&mut self) {\n\
                   let o = self.acceptor.handle_prepare(g, p, b);\n\
                   self.send(Msg::Paxos(PaxosMsg::PrepareReply { group: g, position: p, ballot: b, promised: o.promised, next_bal: o.next_bal, last_vote: o.last_vote }));\n\
                   }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("PrepareReply"));
        assert!(f[0].message.contains("persist"));
    }

    #[test]
    fn persist_call_before_the_reply_is_clean() {
        let src = "fn on_accept(&mut self) {\n\
                   let ok = !accepted || core.persist_vote(g, p, b, &v);\n\
                   if ok { self.send(Msg::Paxos(PaxosMsg::AcceptReply { group: g, position: p, ballot: b, accepted })); }\n\
                   }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn destructuring_match_arms_are_not_constructions() {
        let src = "fn on_reply(&mut self, m: PaxosMsg) {\n\
                   match m {\n\
                   PaxosMsg::PrepareReply { group, position, ballot, promised, next_bal, last_vote } => self.absorb(group),\n\
                   PaxosMsg::AcceptReply { accepted, .. } => self.tally(accepted),\n\
                   _ => {}\n\
                   }\n\
                   }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn proposer_event_constructions_are_out_of_scope() {
        let src = "fn to_event(&self) -> ProposerEvent {\n\
                   ProposerEvent::PrepareReply { group: g, position: p, ballot: b, promised: true, next_bal: n, last_vote: None }\n\
                   }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn persist_after_the_reply_still_fires() {
        let src = "fn on_prepare(&mut self) {\n\
                   self.send(Msg::Paxos(PaxosMsg::PrepareReply { group: g, position: p, ballot: b, promised: true, next_bal: n, last_vote: None }));\n\
                   core.persist_promise(g, p, b);\n\
                   }";
        assert_eq!(findings(src).len(), 1);
    }
}
