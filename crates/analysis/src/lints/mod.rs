//! The lint suite. Each lint is a pure function from [`Workspace`] to
//! findings; waiver handling and reporting live in [`crate::findings`].

use crate::findings::Finding;
use crate::source::Workspace;

pub mod ballot;
pub mod determinism;
pub mod exhaustiveness;
pub mod metrics;
pub mod persist;
pub mod timer_refire;

/// Lint name: hidden entropy in simnet-reachable crates.
pub const DETERMINISM: &str = "determinism";
/// Lint name: every constructed message variant must have a handler arm.
pub const MSG_EXHAUSTIVENESS: &str = "msg-exhaustiveness";
/// Lint name: every timer tag namespace must be re-armed on recovery.
pub const TIMER_REFIRE: &str = "timer-refire";
/// Lint name: every `RunMetrics` field must reach the JSON export and docs.
pub const METRICS_COMPLETENESS: &str = "metrics-completeness";
/// Lint name: ballot proposer comparisons must mask the recovery bit.
pub const BALLOT_DISCIPLINE: &str = "ballot-discipline";
/// Lint name: acceptor replies must be preceded by a persist call.
pub const PERSIST_BEFORE_ACK: &str = "persist-before-ack";

/// A registered lint: name, one-line description, and entry point.
pub struct Lint {
    /// Stable name used in findings and `lint:allow(...)` waivers.
    pub name: &'static str,
    /// One-line description for `--list`.
    pub describe: &'static str,
    /// The check itself.
    pub run: fn(&Workspace) -> Vec<Finding>,
}

/// Every lint in the suite, in execution order.
pub const LINTS: [Lint; 6] = [
    Lint {
        name: DETERMINISM,
        describe: "no wall-clock time, unseeded RNG, or hash-ordered iteration in simnet-reachable crates",
        run: determinism::run,
    },
    Lint {
        name: MSG_EXHAUSTIVENESS,
        describe: "every constructed Msg/PaxosMsg variant has a handler match arm outside its declaring file",
        run: exhaustiveness::run,
    },
    Lint {
        name: TIMER_REFIRE,
        describe: "every timer tag namespace an actor sets is re-armed by its recovery path",
        run: timer_refire::run,
    },
    Lint {
        name: METRICS_COMPLETENESS,
        describe: "every RunMetrics field reaches the JSON export and the documented schema",
        run: metrics::run,
    },
    Lint {
        name: BALLOT_DISCIPLINE,
        describe: "ballot proposer equality comparisons mask RECOVERY_BALLOT_BIT",
        run: ballot::run,
    },
    Lint {
        name: PERSIST_BEFORE_ACK,
        describe: "constructing PaxosMsg::PrepareReply/AcceptReply requires a prior persist*() call in the same handler",
        run: persist::run,
    },
];
