//! `msg-exhaustiveness` — every message variant the protocol constructs
//! must have a handler somewhere.
//!
//! The check is enum-driven: it finds every `enum` whose name ends in
//! `Msg`, collects its variants, then classifies each `Enum::Variant`
//! token sequence in the workspace as either a *match arm* (the path,
//! optionally followed by a balanced `(..)`/`{..}` pattern, leads to `=>`
//! or `|`) or a *construction/reference*. A variant that is constructed
//! anywhere but has no match arm **outside the enum's declaring file** is
//! a finding — the declaring file is excluded because accessor methods
//! like `kind()` match every variant by definition and would make the
//! lint vacuous.

use crate::findings::Finding;
use crate::lexer::{self, TokKind, Token};
use crate::source::Workspace;

struct MsgEnum {
    name: String,
    declared_in: String,
    variants: Vec<String>,
}

/// Run the msg-exhaustiveness lint over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let enums = collect_msg_enums(ws);
    let mut out = Vec::new();
    for e in &enums {
        for variant in &e.variants {
            let mut constructed_at: Option<(String, u32)> = None;
            let mut handled = false;
            for file in &ws.files {
                for (i, t) in file.tokens.iter().enumerate() {
                    if t.in_test
                        || t.kind != TokKind::Ident
                        || t.text != e.name
                        || file.tokens.get(i + 1).map(|n| n.text.as_str()) != Some("::")
                        || file.tokens.get(i + 2).map(|v| v.text.as_str()) != Some(variant.as_str())
                    {
                        continue;
                    }
                    if is_match_arm(&file.tokens, i + 2) {
                        if file.rel != e.declared_in {
                            handled = true;
                        }
                    } else if constructed_at.is_none() && file.rel != e.declared_in {
                        constructed_at = Some((file.rel.clone(), t.line));
                    }
                }
            }
            if let Some((rel, line)) = constructed_at {
                if !handled {
                    out.push(Finding {
                        lint: super::MSG_EXHAUSTIVENESS,
                        rel,
                        line,
                        message: format!(
                            "`{}::{}` is constructed but no handler matches it (outside {})",
                            e.name, variant, e.declared_in
                        ),
                    });
                }
            }
        }
    }
    out
}

/// After `Enum::Variant` at index `vi`, skip an optional balanced pattern
/// group and report whether the sequence is a match arm (`=>` or an
/// or-pattern `|`).
fn is_match_arm(toks: &[Token], vi: usize) -> bool {
    let mut j = vi + 1;
    if toks.get(j).is_some_and(|t| t.text == "(" || t.text == "{") {
        j = lexer::skip_group(toks, j);
    }
    matches!(toks.get(j).map(|t| t.text.as_str()), Some("=>") | Some("|"))
}

/// Find `enum *Msg` declarations and their variant names.
fn collect_msg_enums(ws: &Workspace) -> Vec<MsgEnum> {
    let mut out = Vec::new();
    for file in &ws.files {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].text != "enum"
                || toks[i].in_test
                || !toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && n.text.ends_with("Msg"))
            {
                continue;
            }
            // Find the body brace (skipping any generic params).
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "{" {
                j += 1;
            }
            if j >= toks.len() {
                continue;
            }
            let end = lexer::skip_group(toks, j);
            let mut variants = Vec::new();
            let mut k = j + 1;
            while k < end.min(toks.len()) {
                let t = &toks[k];
                if t.text == "#" {
                    // Skip variant attributes like #[doc = ".."].
                    if toks.get(k + 1).is_some_and(|b| b.text == "[") {
                        k = lexer::skip_group(toks, k + 1);
                        continue;
                    }
                }
                if t.kind == TokKind::Ident {
                    variants.push(t.text.clone());
                    k += 1;
                    if toks.get(k).is_some_and(|n| n.text == "(" || n.text == "{") {
                        k = lexer::skip_group(toks, k);
                    }
                    // Skip to past the variant separator.
                    while k < end && toks[k].text != "," {
                        k += 1;
                    }
                    k += 1;
                } else {
                    k += 1;
                }
            }
            out.push(MsgEnum {
                name: toks[i + 1].text.clone(),
                declared_in: file.rel.clone(),
                variants,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECL: &str = "pub enum TestMsg { Ping(u64), Pong { id: u64 }, Halt }\n\
                        impl TestMsg { fn kind(&self) -> &str { match self { \
                        TestMsg::Ping(_) => \"ping\", TestMsg::Pong { .. } => \"pong\", \
                        TestMsg::Halt => \"halt\" } } }";

    #[test]
    fn unhandled_constructed_variant_fires() {
        let ws = Workspace::from_sources(
            &[
                ("crates/core/src/msg.rs", DECL),
                (
                    "crates/core/src/node.rs",
                    "fn send() -> TestMsg { TestMsg::Halt }\n\
                     fn on_msg(m: TestMsg) { match m { TestMsg::Ping(n) => drop(n), \
                     TestMsg::Pong { id } => drop(id), _ => {} } }",
                ),
            ],
            &[],
        );
        let f = run(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("TestMsg::Halt"));
        assert_eq!(f[0].rel, "crates/core/src/node.rs");
    }

    #[test]
    fn fully_handled_enum_is_clean() {
        let ws = Workspace::from_sources(
            &[
                ("crates/core/src/msg.rs", DECL),
                (
                    "crates/core/src/node.rs",
                    "fn send() -> Vec<TestMsg> { vec![TestMsg::Ping(1), TestMsg::Pong { id: 2 }, TestMsg::Halt] }\n\
                     fn on_msg(m: TestMsg) { match m { TestMsg::Ping(n) => drop(n), \
                     TestMsg::Pong { id } => drop(id), TestMsg::Halt => {} } }",
                ),
            ],
            &[],
        );
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn accessor_arms_in_declaring_file_do_not_count() {
        // DECL's own kind() matches everything; with a construction elsewhere
        // and no external handler, the lint must still fire.
        let ws = Workspace::from_sources(
            &[
                ("crates/core/src/msg.rs", DECL),
                (
                    "crates/core/src/node.rs",
                    "fn send() -> TestMsg { TestMsg::Ping(7) }",
                ),
            ],
            &[],
        );
        let f = run(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("TestMsg::Ping"));
    }

    #[test]
    fn or_patterns_count_as_handling() {
        let ws = Workspace::from_sources(
            &[
                ("crates/core/src/msg.rs", "pub enum TinyMsg { A, B }"),
                (
                    "crates/core/src/node.rs",
                    "fn send() -> (TinyMsg, TinyMsg) { (TinyMsg::A, TinyMsg::B) }\n\
                     fn on_msg(m: TinyMsg) { match m { TinyMsg::A | TinyMsg::B => {} } }",
                ),
            ],
            &[],
        );
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn unconstructed_variants_are_not_required_to_be_handled() {
        let ws = Workspace::from_sources(
            &[("crates/core/src/msg.rs", "pub enum IdleMsg { Never(u8) }")],
            &[],
        );
        assert!(run(&ws).is_empty());
    }
}
