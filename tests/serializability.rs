//! End-to-end serializability: every experiment configuration must produce
//! replica-agreeing, one-copy-serializable histories, and the client-side
//! view of commits must match what actually landed in the replicated log.

use paxos_cp::mdstore::{CommitProtocol, Topology};
use paxos_cp::workload::{run_experiment, ExperimentSpec, Placement};

fn spec(topology: &str, protocol: CommitProtocol, seed: u64) -> ExperimentSpec {
    ExperimentSpec::paper_default(Topology::from_name(topology).unwrap(), protocol)
        .named(format!("it-{topology}-{}-{seed}", protocol.name()))
        .with_clients(3, 15)
        .with_seed(seed)
}

#[test]
fn histories_are_serializable_across_topologies_and_protocols() {
    for topology in ["VV", "VVV", "COV"] {
        for protocol in [CommitProtocol::BasicPaxos, CommitProtocol::PaxosCp] {
            // run_experiment panics internally if the checker finds a
            // violation; reaching this assert means the history verified.
            let result = run_experiment(&spec(topology, protocol, 101));
            assert_eq!(result.attempted, 45, "{topology}/{protocol:?}");
            assert_eq!(
                result.totals.committed + result.totals.aborted,
                result.attempted,
                "every transaction reaches a decision"
            );
            assert!(!result.check.is_empty());
        }
    }
}

#[test]
fn client_reported_commits_match_the_replicated_log() {
    let result = run_experiment(&spec("VVV", CommitProtocol::PaxosCp, 77));
    let logged: usize = result
        .check
        .iter()
        .map(|(_, report)| report.transactions)
        .sum();
    // Read-only transactions commit without ever entering the write-ahead
    // log (§3.2), so the log must hold exactly the read/write commits.
    assert_eq!(
        logged,
        result.totals.committed - result.totals.read_only,
        "transactions in the merged log must equal client-side read/write commits"
    );
}

#[test]
fn serializability_holds_under_message_loss() {
    for protocol in [CommitProtocol::BasicPaxos, CommitProtocol::PaxosCp] {
        let mut s = spec("VVV", protocol, 303);
        s.topology = Topology::vvv().with_loss(0.10);
        let result = run_experiment(&s);
        assert_eq!(result.attempted, 45);
        assert!(
            result.net.dropped_loss > 0,
            "loss must actually have occurred"
        );
        assert!(
            result.totals.committed > 0,
            "a lossy but connected majority still commits"
        );
    }
}

#[test]
fn geo_distributed_clients_remain_serializable() {
    let spec = ExperimentSpec::paper_default(Topology::voc(), CommitProtocol::PaxosCp)
        .named("it-geo")
        .with_placement(Placement::RoundRobin)
        .with_clients(3, 20)
        .with_seed(11);
    let result = run_experiment(&spec);
    assert_eq!(result.attempted, 60);
    // Each datacenter hosted one client.
    let mut replicas = result.client_replicas.clone();
    replicas.sort_unstable();
    assert_eq!(replicas, vec![0, 1, 2]);
    // The merged log and per-replica logs agreed (checker ran inside).
    assert!(result.totals.committed > 30);
}

#[test]
fn read_only_transactions_always_commit_and_stay_out_of_the_log() {
    let mut s = spec("VVV", CommitProtocol::PaxosCp, 55);
    s.read_fraction = 1.0; // every operation is a read => read-only txns
    let result = run_experiment(&s);
    assert_eq!(result.totals.committed, result.attempted);
    assert_eq!(result.totals.read_only, result.attempted);
    let logged: usize = result.check.iter().map(|(_, r)| r.transactions).sum();
    assert_eq!(
        logged, 0,
        "read-only transactions never enter the write-ahead log"
    );
}

#[test]
fn same_seed_reproduces_identical_results() {
    let a = run_experiment(&spec("VVV", CommitProtocol::PaxosCp, 999));
    let b = run_experiment(&spec("VVV", CommitProtocol::PaxosCp, 999));
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.net, b.net);
    assert_eq!(a.duration, b.duration);
}
