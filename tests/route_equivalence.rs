//! Route equivalence: the same seeded workload must be correct — and land
//! in the same place — whichever commit route carries it.
//!
//! * **Contended**: the paper's read/write workload run under
//!   `CommitRoute::Direct` and `CommitRoute::Submitted` must both produce
//!   serializable per-group logs (the checker runs inside
//!   `run_experiment`; these tests re-run it over the merged logs via
//!   `Cluster::verify` semantics) with every transaction reaching an
//!   outcome.
//! * **Conflict-free**: when every writer touches its own row, nothing can
//!   abort — both routes must commit everything and converge to the
//!   *identical* final store state.
//! * **Snapshot reads in the mix**: the conflict-free runs also open
//!   read-only snapshot handles mid-run, rotating through every replica as
//!   the serving datacenter. The snapshot plane must not perturb where the
//!   writes land (final states still identical across routes), and every
//!   value a snapshot observed must be explained by the merged decided log
//!   at the handle's watermark ([`workload::explain_snapshot_reads`]).

use mdstore::{ClientAction, CommitProtocol, CommitRoute, Topology};
use workload::{run_experiment, ClientDriver, DriverConfig, ExperimentSpec, SnapshotReadSample};

use mdstore::{Cluster, ClusterConfig, RunMetrics, Session};
use parking_lot::Mutex;
use simnet::{NodeId, SimDuration};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use walog::{checker, GroupLog};

/// The same seeded contended workload down both routes: both serializable,
/// every transaction decided, equal offered load.
#[test]
fn contended_workload_is_serializable_under_both_routes() {
    let spec = |route: CommitRoute| {
        ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::PaxosCp)
            .named(format!("route-eq-{}", route.name()))
            .with_clients(4, 10)
            .with_route(route)
            .with_max_open(3)
            .with_target_tps(25.0)
            .with_attributes(30)
            .with_seed(4242)
    };
    // `run_experiment` panics if the merged per-group logs violate replica
    // agreement or one-copy serializability, so reaching the asserts means
    // both routes passed the checker on identical offered load.
    let direct = run_experiment(&spec(CommitRoute::Direct));
    let submitted = run_experiment(&spec(CommitRoute::Submitted));
    for result in [&direct, &submitted] {
        assert_eq!(result.attempted, 40, "{}", result.name);
        assert_eq!(
            result.totals.committed + result.totals.aborted,
            result.attempted,
            "{}: every transaction must reach an outcome",
            result.name
        );
        assert!(result.totals.committed > 0, "{}", result.name);
        assert!(!result.check.is_empty(), "{}", result.name);
    }
}

/// Open a read-only snapshot transaction homed at `replica`, read every
/// (row, attr) cell of the conflict-free workload through it, and return
/// one [`SnapshotReadSample`] per cell, stamped with the handle's
/// watermark. Driven synchronously against the shared cores — snapshot
/// handles never run Paxos, so no simulator turn is needed.
fn snapshot_all_cells(
    cluster: &Cluster,
    replica: usize,
    writers: usize,
) -> Vec<SnapshotReadSample> {
    let symbols = cluster.symbols();
    let group = symbols.group("shard");
    let mut session = Session::new(
        NodeId(900 + replica as u32),
        replica,
        cluster.directory(),
        cluster.client_config(),
    );
    let now = cluster.now();
    let handle = session.begin_read_only(now, "shard");
    let (serving, at) = session
        .snapshot_watermark(handle)
        .expect("read-only handle has a watermark");
    assert_eq!(serving, replica, "the session's own datacenter serves");
    let mut samples = Vec::new();
    for w in 0..writers {
        let row_name = format!("row{w}");
        let row = symbols.key(&row_name);
        for a in 0..6 {
            let attr_name = format!("a{a}");
            let attr = symbols.attr(&attr_name);
            let observed = session
                .read(handle, &row_name, &attr_name)
                .expect("snapshot reads never abort");
            samples.push(SnapshotReadSample {
                group,
                at,
                row,
                attr,
                observed,
            });
        }
    }
    let actions = session
        .commit(now, handle)
        .expect("read-only commit cannot fail");
    assert!(
        matches!(
            actions.as_slice(),
            [ClientAction::Finished(result)] if result.committed && result.read_only
        ),
        "read-only commit closes immediately, route-free"
    );
    samples
}

/// Run `writers` conflict-free drivers (each writing only its own row) down
/// `route` — with snapshot readers interleaved mid-run at every replica —
/// and return the final value of every (row, attr) cell at replica 0, the
/// run totals, and the number of checker-explained snapshot reads.
fn conflict_free_final_state(
    route: CommitRoute,
    writers: usize,
    txns_each: usize,
) -> (
    BTreeMap<(String, String), Option<String>>,
    RunMetrics,
    usize,
) {
    let mut cluster =
        Cluster::build(ClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp).with_seed(99));
    let mut sinks = Vec::new();
    for w in 0..writers {
        let metrics = Arc::new(Mutex::new(RunMetrics::default()));
        sinks.push(metrics.clone());
        let mut client_config = cluster.client_config();
        client_config.route = route;
        let driver_config = DriverConfig {
            group: "shard".into(),
            row_key: format!("row{w}"),
            num_attributes: 6,
            key_distribution: workload::KeyDistribution::Uniform,
            num_transactions: txns_each,
            ops_per_txn: 4,
            // Blind writes only, strictly serial per driver: a writer's own
            // overlapping transactions would race for log order on the
            // attributes they share, and a read of an earlier write would
            // make the workload contended — either way outcomes could
            // legally diverge between routes. Serial disjoint-row writers
            // have exactly one serializable final state.
            read_fraction: 0.0,
            target_tps: 40.0,
            max_open: 1,
            start_delay: SimDuration::from_millis(10 * w as u64),
            op_delay: SimDuration::from_millis(2),
            op_jitter: 0.0,
            arrival_jitter: 0.0,
            seed: 1000 + w as u64,
        };
        let directory = cluster.directory();
        cluster.add_client(0, |node| {
            Box::new(ClientDriver::new(
                node,
                0,
                directory,
                client_config,
                driver_config,
                metrics,
            ))
        });
    }
    // Interleave snapshot reads with the writers: run the simulation in
    // slices and, between slices, read every cell through a read-only
    // handle homed at a rotating replica. Each handle's watermark is that
    // replica's applied prefix at that instant, so the samples span the
    // whole history from empty store to fully written.
    let mut samples = Vec::new();
    for slice in 0..5 {
        cluster.run_for(SimDuration::from_millis(60));
        samples.extend(snapshot_all_cells(&cluster, slice % 3, writers));
    }
    cluster.run_to_completion();
    // One more snapshot per replica at the final watermark: these must
    // observe exactly the final state the routes are compared on.
    for replica in 0..3 {
        samples.extend(snapshot_all_cells(&cluster, replica, writers));
    }
    cluster
        .verify()
        .expect("conflict-free run must be serializable");

    let mut totals = RunMetrics::default();
    for sink in &sinks {
        totals.merge(&sink.lock());
    }
    let symbols = cluster.symbols();
    let group = symbols.group("shard");
    let mut state = BTreeMap::new();
    let mut state_in_order = Vec::new();
    {
        let core = cluster.core(0);
        let mut core = core.lock();
        let position = core.read_position(group);
        for w in 0..writers {
            let row_name = format!("row{w}");
            let row = symbols.key(&row_name);
            for a in 0..6 {
                let attr_name = format!("a{a}");
                let attr = symbols.attr(&attr_name);
                let value = core.read(group, row, attr, position).unwrap();
                state_in_order.push(value.clone());
                state.insert((row_name.clone(), attr_name), value);
            }
        }
    }
    // The post-drain snapshots — one per serving replica — must observe
    // exactly the final state the routes are compared on, wherever they
    // were served.
    let per_snapshot = writers * 6;
    let finals = &samples[samples.len() - 3 * per_snapshot..];
    for (replica, chunk) in finals.chunks(per_snapshot).enumerate() {
        let observed: Vec<Option<String>> = chunk.iter().map(|s| s.observed.clone()).collect();
        assert_eq!(
            observed, state_in_order,
            "replica {replica}'s final snapshot must see the final state"
        );
    }
    // Prove every snapshot read — mid-run and final — against the merged
    // decided log at its watermark.
    let logs_by_replica = cluster.replica_logs(group);
    let log_refs: Vec<&GroupLog> = logs_by_replica.iter().collect();
    let mut logs = HashMap::new();
    logs.insert(group, checker::merged_log(&log_refs));
    let verified = workload::explain_snapshot_reads(&logs, &samples)
        .expect("every snapshot read must be explained at its watermark");
    assert_eq!(verified, samples.len());
    (state, totals, verified)
}

/// Conflict-free workload with snapshot readers mixed in: disjoint rows
/// per writer ⇒ nothing can abort ⇒ both routes commit everything and the
/// final store states are identical, cell for cell — and the interleaved
/// snapshot reads (never aborting, served by rotating replicas) are all
/// explained by the merged decided log at their watermarks.
#[test]
fn conflict_free_workload_converges_to_identical_state_under_both_routes() {
    let (direct_state, direct_totals, direct_verified) =
        conflict_free_final_state(CommitRoute::Direct, 3, 6);
    let (submitted_state, submitted_totals, submitted_verified) =
        conflict_free_final_state(CommitRoute::Submitted, 3, 6);
    assert_eq!(direct_totals.attempted, 18);
    assert_eq!(submitted_totals.attempted, 18);
    assert_eq!(
        direct_totals.committed, direct_totals.attempted,
        "conflict-free direct route must commit everything"
    );
    assert_eq!(
        submitted_totals.committed, submitted_totals.attempted,
        "conflict-free submitted route must commit everything"
    );
    assert_eq!(
        direct_state, submitted_state,
        "both routes must converge to the identical final store state"
    );
    // Some cell was actually written (the workload is all writes).
    assert!(direct_state.values().any(|v| v.is_some()));
    // Every snapshot read on both routes was proven at its watermark: 5
    // mid-run snapshots plus 3 final ones, 18 cells each.
    assert_eq!(direct_verified, 8 * 18);
    assert_eq!(submitted_verified, 8 * 18);
}
