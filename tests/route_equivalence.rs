//! Route equivalence: the same seeded workload must be correct — and land
//! in the same place — whichever commit route carries it.
//!
//! * **Contended**: the paper's read/write workload run under
//!   `CommitRoute::Direct` and `CommitRoute::Submitted` must both produce
//!   serializable per-group logs (the checker runs inside
//!   `run_experiment`; these tests re-run it over the merged logs via
//!   `Cluster::verify` semantics) with every transaction reaching an
//!   outcome.
//! * **Conflict-free**: when every writer touches its own row, nothing can
//!   abort — both routes must commit everything and converge to the
//!   *identical* final store state.

use mdstore::{CommitProtocol, CommitRoute, Topology};
use workload::{run_experiment, ClientDriver, DriverConfig, ExperimentSpec};

use mdstore::{Cluster, ClusterConfig, RunMetrics};
use parking_lot::Mutex;
use simnet::SimDuration;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The same seeded contended workload down both routes: both serializable,
/// every transaction decided, equal offered load.
#[test]
fn contended_workload_is_serializable_under_both_routes() {
    let spec = |route: CommitRoute| {
        ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::PaxosCp)
            .named(format!("route-eq-{}", route.name()))
            .with_clients(4, 10)
            .with_route(route)
            .with_max_open(3)
            .with_target_tps(25.0)
            .with_attributes(30)
            .with_seed(4242)
    };
    // `run_experiment` panics if the merged per-group logs violate replica
    // agreement or one-copy serializability, so reaching the asserts means
    // both routes passed the checker on identical offered load.
    let direct = run_experiment(&spec(CommitRoute::Direct));
    let submitted = run_experiment(&spec(CommitRoute::Submitted));
    for result in [&direct, &submitted] {
        assert_eq!(result.attempted, 40, "{}", result.name);
        assert_eq!(
            result.totals.committed + result.totals.aborted,
            result.attempted,
            "{}: every transaction must reach an outcome",
            result.name
        );
        assert!(result.totals.committed > 0, "{}", result.name);
        assert!(!result.check.is_empty(), "{}", result.name);
    }
}

/// Run `writers` conflict-free drivers (each writing only its own row) down
/// `route` and return the final value of every (row, attr) cell at replica
/// 0, plus the run totals.
fn conflict_free_final_state(
    route: CommitRoute,
    writers: usize,
    txns_each: usize,
) -> (BTreeMap<(String, String), Option<String>>, RunMetrics) {
    let mut cluster =
        Cluster::build(ClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp).with_seed(99));
    let mut sinks = Vec::new();
    for w in 0..writers {
        let metrics = Arc::new(Mutex::new(RunMetrics::default()));
        sinks.push(metrics.clone());
        let mut client_config = cluster.client_config();
        client_config.route = route;
        let driver_config = DriverConfig {
            group: "shard".into(),
            row_key: format!("row{w}"),
            num_attributes: 6,
            key_distribution: workload::KeyDistribution::Uniform,
            num_transactions: txns_each,
            ops_per_txn: 4,
            // Blind writes only, strictly serial per driver: a writer's own
            // overlapping transactions would race for log order on the
            // attributes they share, and a read of an earlier write would
            // make the workload contended — either way outcomes could
            // legally diverge between routes. Serial disjoint-row writers
            // have exactly one serializable final state.
            read_fraction: 0.0,
            target_tps: 40.0,
            max_open: 1,
            start_delay: SimDuration::from_millis(10 * w as u64),
            op_delay: SimDuration::from_millis(2),
            op_jitter: 0.0,
            arrival_jitter: 0.0,
            seed: 1000 + w as u64,
        };
        let directory = cluster.directory();
        cluster.add_client(0, |node| {
            Box::new(ClientDriver::new(
                node,
                0,
                directory,
                client_config,
                driver_config,
                metrics,
            ))
        });
    }
    cluster.run_to_completion();
    cluster
        .verify()
        .expect("conflict-free run must be serializable");

    let mut totals = RunMetrics::default();
    for sink in &sinks {
        totals.merge(&sink.lock());
    }
    let symbols = cluster.symbols();
    let group = symbols.group("shard");
    let core = cluster.core(0);
    let mut core = core.lock();
    let position = core.read_position(group);
    let mut state = BTreeMap::new();
    for w in 0..writers {
        let row_name = format!("row{w}");
        let row = symbols.key(&row_name);
        for a in 0..6 {
            let attr_name = format!("a{a}");
            let attr = symbols.attr(&attr_name);
            let value = core.read(group, row, attr, position).unwrap();
            state.insert((row_name.clone(), attr_name), value);
        }
    }
    (state, totals)
}

/// Conflict-free workload: disjoint rows per writer ⇒ nothing can abort ⇒
/// both routes commit everything and the final store states are identical,
/// cell for cell.
#[test]
fn conflict_free_workload_converges_to_identical_state_under_both_routes() {
    let (direct_state, direct_totals) = conflict_free_final_state(CommitRoute::Direct, 3, 6);
    let (submitted_state, submitted_totals) =
        conflict_free_final_state(CommitRoute::Submitted, 3, 6);
    assert_eq!(direct_totals.attempted, 18);
    assert_eq!(submitted_totals.attempted, 18);
    assert_eq!(
        direct_totals.committed, direct_totals.attempted,
        "conflict-free direct route must commit everything"
    );
    assert_eq!(
        submitted_totals.committed, submitted_totals.attempted,
        "conflict-free submitted route must commit everything"
    );
    assert_eq!(
        direct_state, submitted_state,
        "both routes must converge to the identical final store state"
    );
    // Some cell was actually written (the workload is all writes).
    assert!(direct_state.values().any(|v| v.is_some()));
}
