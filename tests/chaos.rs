//! Rolling-failure chaos: the end-to-end availability story of §2.2 under
//! an adversarial schedule. Leaders crash and restart, an inter-site link
//! flaps, group homes migrate, and the per-message chaos policies duplicate
//! and reorder deliveries — while clients keep offering an open-loop load
//! and lean on the session's exactly-once automatic re-submission. Every
//! run must stay serializable, commit every client-observed transaction at
//! exactly one log position, and never let committed throughput flatline.

use mdstore::datacenter::SharedCore;
use mdstore::{
    Cluster, ClusterConfig, CommitProtocol, Msg, ParallelCluster, ParallelClusterConfig,
    RunMetrics, Topology,
};
use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{Actor, ChaosConfig, ChaosSchedule, ChaosSpec, Context, NodeId, SimDuration, SiteId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use walog::{GroupId, ItemRef, LogPosition, Transaction, TxnId};
use workload::{run_chaos, ChaosRunSpec, ClientDriver, DriverConfig, KeyDistribution};

/// The ISSUE's acceptance scenario: 60 s of simulated time under rolling
/// leader crashes (one roughly every two seconds with staggered restarts),
/// a flapping partition between the two non-primary sites and periodic
/// group-home migration, with a zipfian open-loop load offered throughout.
/// The run must complete with zero `Unavailable` outcomes surfaced to
/// clients, a checker-verified serializable history (asserted inside
/// [`run_chaos`]), and committed throughput above zero in every one-second
/// window.
#[test]
fn sixty_seconds_of_rolling_chaos_stays_serializable_available_and_live() {
    let result = run_chaos(&ChaosRunSpec::rolling_failure(SimDuration::from_secs(60)));
    assert!(result.committed > 0);
    assert_eq!(
        result.unavailable, 0,
        "automatic re-submission must absorb every fault window"
    );
    assert_eq!(result.window_commits.len(), 60);
    assert!(
        result.min_window_commits > 0,
        "committed throughput flatlined: {:?}",
        result.window_commits
    );
    assert!(
        result.faults_injected > 30,
        "the schedule must keep injecting"
    );
    assert!(
        result.resubmissions > 0,
        "faults must exercise the retry path"
    );
    assert!(
        result.duplicate_suppressions > 0,
        "retries must be answered from the dedup layers, not re-executed"
    );
}

/// Duplicated and reordered deliveries — `Msg::CommitRequest` retries and
/// `PaxosMsg` traffic alike — must never rewrite a decided log position.
/// A mid-run snapshot of the decided prefix is compared against the final
/// logs of every replica, and the whole history must still pass the
/// checker with every transaction reaching exactly one outcome.
#[test]
fn duplicated_and_reordered_deliveries_never_rewrite_the_decided_prefix() {
    let mut cluster =
        Cluster::build(ClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp).with_seed(9));
    cluster.sim_mut().network_mut().config_mut().chaos = ChaosConfig::default()
        .with_duplicates(0.3)
        .with_reordering(0.25, SimDuration::from_millis(80))
        .with_bursts(0.1, 3.0);

    let mut sinks = Vec::new();
    for w in 0..3 {
        let metrics = Arc::new(Mutex::new(RunMetrics::default()));
        sinks.push(metrics.clone());
        let client_config = cluster.client_config();
        let driver_config = DriverConfig {
            group: "shard".into(),
            row_key: "hot".into(),
            num_attributes: 16,
            key_distribution: KeyDistribution::Uniform,
            num_transactions: 25,
            ops_per_txn: 2,
            read_fraction: 0.0,
            target_tps: 25.0,
            max_open: 2,
            start_delay: SimDuration::from_millis(5 * w as u64),
            op_delay: SimDuration::from_millis(1),
            op_jitter: 0.5,
            arrival_jitter: 0.3,
            seed: 900 + w as u64,
        };
        let directory = cluster.directory();
        let sink = metrics;
        cluster.add_client(0, move |node| {
            Box::new(ClientDriver::new(
                node,
                0,
                directory,
                client_config,
                driver_config,
                sink,
            ))
        });
    }

    // Snapshot the decided prefix mid-run, while duplicates of already
    // counted accepts and applies are still arriving late.
    cluster.run_for(SimDuration::from_secs(2));
    let snapshot: BTreeMap<(GroupId, LogPosition), Vec<TxnId>> = {
        let core = cluster.core(0);
        let core = core.lock();
        core.logs()
            .flat_map(|(group, log)| {
                log.iter()
                    .map(move |(position, entry)| ((group, position), entry.txn_ids()))
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    assert!(!snapshot.is_empty(), "something must have decided by 2 s");
    cluster.run_to_completion();

    let stats = cluster.sim().stats();
    assert!(
        stats.duplicated > 0,
        "chaos must have duplicated deliveries"
    );
    assert!(stats.reordered > 0, "chaos must have reordered deliveries");

    // The snapshotted prefix is immutable: every replica's final log holds
    // the identical entry at every snapshotted position.
    for replica in 0..cluster.num_datacenters() {
        let core = cluster.core(replica);
        let core = core.lock();
        for ((group, position), ids) in &snapshot {
            let entry = core
                .log(*group)
                .and_then(|log| log.get(*position))
                .unwrap_or_else(|| panic!("replica {replica} lost decided {position}"));
            assert_eq!(
                &entry.txn_ids(),
                ids,
                "replica {replica} rewrote decided position {position}"
            );
        }
    }

    let mut totals = RunMetrics::default();
    for sink in &sinks {
        totals.merge(&sink.lock());
    }
    assert_eq!(totals.attempted, 75, "every transaction must be offered");
    assert_eq!(
        totals.committed + totals.aborted,
        75,
        "every transaction must reach exactly one outcome"
    );
    cluster
        .verify()
        .expect("duplicated/reordered runs must stay serializable");
}

/// Reserved retry-timer tag namespace: the tag carries the attempt id.
const RETRY_EVERY: SimDuration = SimDuration::from_millis(200);

/// A strictly serial blind writer that survives chaos: one transaction in
/// flight at a time, re-sent on a timer until its fate arrives (the
/// service-side `TxnId` dedup makes the retries exactly-once), re-sent
/// with a *fresh* id if the fate was an abort, and re-driven from
/// `on_recover` when the writer's own site crashes. Because each value
/// waits for the previous one's decision, the final store state is
/// causally fixed and comparable across runtimes and fault schedules.
struct ChaosSerialWriter {
    /// Writer index; values are `w{label}-s{seq}`, independent of node id.
    label: usize,
    group: GroupId,
    service: NodeId,
    /// The group home's datacenter core, for read positions.
    core: SharedCore,
    items: Vec<ItemRef>,
    quota: u64,
    /// Index of the value currently being committed (1-based).
    value_seq: u64,
    /// Unique id per submission attempt (fresh after an abort).
    txn_seq: u64,
    pending: Option<Transaction>,
    committed: Arc<AtomicUsize>,
    done: Arc<AtomicUsize>,
}

impl ChaosSerialWriter {
    fn submit_value(&mut self, ctx: &mut Context<Msg>) {
        if self.value_seq > self.quota {
            self.pending = None;
            self.done.fetch_add(1, Ordering::SeqCst);
            return;
        }
        let read_position = self.core.lock().read_position(self.group);
        self.txn_seq += 1;
        let item = self.items[(self.value_seq as usize - 1) % self.items.len()];
        let txn = Transaction::builder(
            TxnId::new(ctx.node().0, self.txn_seq),
            self.group,
            read_position,
        )
        .write(item, format!("w{}-s{}", self.label, self.value_seq))
        .build();
        self.pending = Some(txn);
        self.send_pending(ctx);
    }

    fn send_pending(&mut self, ctx: &mut Context<Msg>) {
        if let Some(txn) = &self.pending {
            ctx.send(
                self.service,
                Msg::CommitRequest {
                    req_id: self.txn_seq,
                    txn: txn.clone(),
                },
            );
            ctx.set_timer(RETRY_EVERY, self.txn_seq);
        }
    }
}

impl Actor<Msg> for ChaosSerialWriter {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.value_seq = 1;
        self.submit_value(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
        let Msg::CommitReply {
            req_id, committed, ..
        } = msg
        else {
            return;
        };
        if self.pending.is_none() || req_id != self.txn_seq {
            return; // stale reply to a superseded attempt
        }
        if committed {
            self.committed.fetch_add(1, Ordering::SeqCst);
            self.value_seq += 1;
        }
        // Committed: move on to the next value. Aborted: re-submit the same
        // value under a fresh id (the old id's abort fate is recorded).
        self.submit_value(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if self.pending.is_some() && tag == self.txn_seq {
            self.send_pending(ctx);
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<Msg>) {
        // The crash suppressed the retry timer; re-drive the pending
        // attempt immediately (dedup absorbs any duplicate).
        self.send_pending(ctx);
    }
}

const WRITERS: usize = 4;
const GROUPS: usize = 2;
const QUOTA: u64 = 5;
const ATTRS: usize = 3;

fn writer_item_names(w: usize) -> Vec<(String, String)> {
    (0..ATTRS)
        .map(|a| (format!("row{w}"), format!("a{a}")))
        .collect()
}

/// Expected final value of writer `w`'s item `i`: the last seq in
/// `1..=QUOTA` that cycled onto it (serial submission fixes the order).
fn expected_final(w: usize, item: usize) -> Option<String> {
    let mut last = None;
    for s in 1..=QUOTA {
        if (s as usize - 1) % ATTRS == item {
            last = Some(format!("w{w}-s{s}"));
        }
    }
    last
}

type FinalState = BTreeMap<(String, String), Option<String>>;

/// The conflict-free serial-writer workload on the simnet, with rolling
/// site crashes injected throughout. Returns (final state, commits).
fn chaotic_simnet_run() -> (FinalState, usize) {
    let mut cluster =
        Cluster::build(ClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp).with_seed(7));
    let symbols = cluster.symbols();
    let groups: Vec<GroupId> = (0..GROUPS)
        .map(|g| symbols.group(&format!("g{g}")))
        .collect();
    let committed = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicUsize::new(0));
    for w in 0..WRITERS {
        let group = groups[w % GROUPS];
        let home = cluster.directory().group_home(group);
        let items: Vec<ItemRef> = writer_item_names(w)
            .iter()
            .map(|(row, attr)| ItemRef::new(symbols.key(row), symbols.attr(attr)))
            .collect();
        let service = cluster.service_node(home);
        let core = cluster.core(home);
        let committed = Arc::clone(&committed);
        let done = Arc::clone(&done);
        cluster.add_client(home, move |_node| {
            Box::new(ChaosSerialWriter {
                label: w,
                group,
                service,
                core,
                items,
                quota: QUOTA,
                value_seq: 0,
                txn_seq: 0,
                pending: None,
                committed,
                done,
            })
        });
    }

    // Rolling crashes across all three sites for the first five seconds —
    // the writers' own sites included — then let the survivors drain.
    let chaos = ChaosSpec::new(SimDuration::from_secs(5)).with_rolling_crashes(
        3,
        SimDuration::from_secs(1),
        SimDuration::from_millis(300),
    );
    let mut schedule = ChaosSchedule::generate(&chaos, 7);
    let mut faults = 0;
    while let Some(due) = schedule.next_due() {
        cluster.sim_mut().run_until(due);
        for event in schedule.pop_due(due) {
            assert!(ChaosSchedule::apply_network(event, cluster.sim_mut()));
            faults += u64::from(event.is_fault());
        }
    }
    assert!(faults > 0, "the schedule must actually crash sites");
    cluster.run_to_completion();
    assert_eq!(
        done.load(Ordering::SeqCst),
        WRITERS,
        "every writer must drain its quota through the crashes"
    );
    cluster
        .verify()
        .expect("chaotic conflict-free run must be serializable");

    let mut state = FinalState::new();
    for w in 0..WRITERS {
        let group = groups[w % GROUPS];
        let home = cluster.directory().group_home(group);
        let core = cluster.core(home);
        let mut core = core.lock();
        let position = core.read_position(group);
        for (row, attr) in writer_item_names(w) {
            let value = core
                .read(group, symbols.key(&row), symbols.attr(&attr), position)
                .unwrap();
            state.insert((row, attr), value);
        }
    }
    (state, committed.load(Ordering::SeqCst))
}

/// The identical workload on the fault-free 2-worker parallel runtime.
fn parallel_fault_free_run() -> (FinalState, usize) {
    let mut cluster = ParallelCluster::build(
        ParallelClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp)
            .with_workers(2)
            .with_seed(7),
    );
    let symbols = cluster.symbols();
    let groups: Vec<GroupId> = (0..GROUPS)
        .map(|g| cluster.register_group(&format!("g{g}")))
        .collect();
    let committed = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicUsize::new(0));
    let replicas = cluster.num_datacenters();
    for w in 0..WRITERS {
        let group = groups[w % GROUPS];
        let items: Vec<ItemRef> = writer_item_names(w)
            .iter()
            .map(|(row, attr)| ItemRef::new(symbols.key(row), symbols.attr(attr)))
            .collect();
        let service = cluster.service_for_group(group);
        let core = cluster.home_core(group);
        let worker = cluster.shard_of_group(group);
        let committed = Arc::clone(&committed);
        let done = Arc::clone(&done);
        let writer = ChaosSerialWriter {
            label: w,
            group,
            service,
            core,
            items,
            quota: QUOTA,
            value_seq: 0,
            txn_seq: 0,
            pending: None,
            committed,
            done,
        };
        cluster.add_driver(worker, w % replicas, move |_node| Box::new(writer));
    }
    let done_flag = Arc::clone(&done);
    cluster.run(Duration::from_secs(30), move || {
        done_flag.load(Ordering::SeqCst) >= WRITERS
    });
    assert_eq!(done.load(Ordering::SeqCst), WRITERS);
    cluster
        .verify()
        .expect("fault-free parallel run must be serializable");

    let mut state = FinalState::new();
    for w in 0..WRITERS {
        let group = groups[w % GROUPS];
        for (row, attr) in writer_item_names(w) {
            let value = cluster.read_committed(group, symbols.key(&row), symbols.attr(&attr));
            state.insert((row, attr), value);
        }
    }
    (state, committed.load(Ordering::SeqCst))
}

/// Chaos must cost latency, not outcomes: the serial-writer workload run
/// through rolling crashes on the simnet converges to the *identical*
/// final store state as the fault-free 2-worker parallel runtime — the
/// causally expected one — with every value committed exactly once.
#[test]
fn chaotic_simnet_matches_fault_free_parallel_on_conflict_free_workload() {
    let (chaos_state, chaos_committed) = chaotic_simnet_run();
    let (par_state, par_committed) = parallel_fault_free_run();

    let total = WRITERS * QUOTA as usize;
    assert_eq!(
        chaos_committed, total,
        "chaos run commits every value exactly once"
    );
    assert_eq!(par_committed, total, "parallel run commits every value");
    assert_eq!(
        chaos_state, par_state,
        "both runtimes must converge to the identical final store state"
    );
    for w in 0..WRITERS {
        for (i, (row, attr)) in writer_item_names(w).into_iter().enumerate() {
            assert_eq!(
                chaos_state
                    .get(&(row.clone(), attr.clone()))
                    .cloned()
                    .flatten(),
                expected_final(w, i),
                "item ({row}, {attr}) must hold the last serial write"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Any seed, any crash/churn cadence: the 3-datacenter, 4-group
    /// rolling-failure scenario must produce a serializable history in
    /// which every client-observed commit appears at exactly one position
    /// of the merged decided log (both asserted inside [`run_chaos`]), and
    /// the metrics must stay internally consistent.
    #[test]
    fn seeded_chaos_commits_exactly_once_and_stays_serializable(
        seed in any::<u64>(),
        crash_period_ms in 800u64..2000,
        churn_period_ms in 1500u64..4000,
    ) {
        let duration = SimDuration::from_secs(4);
        let chaos = ChaosSpec::new(duration)
            .with_rolling_crashes(
                3,
                SimDuration::from_millis(crash_period_ms),
                SimDuration::from_millis(250),
            )
            .with_flapping(
                SiteId(1),
                SiteId(2),
                SimDuration::from_secs(2),
                SimDuration::from_millis(200),
            )
            .with_home_churn(4, SimDuration::from_millis(churn_period_ms));
        let mut spec = ChaosRunSpec::rolling_failure(duration)
            .with_chaos(chaos)
            .with_offered_tps(60.0)
            .with_seed(seed);
        // Liveness bars are scenario-tuned; arbitrary cadences only have to
        // be safe and exactly-once, which run_chaos asserts before returning.
        spec.require_liveness = false;
        let result = run_chaos(&spec);
        prop_assert!(result.committed > 0, "seed {seed}: nothing committed");
        prop_assert!(result.attempted >= result.committed + result.aborted);
        prop_assert!(result.faults_injected > 0);
    }
}
