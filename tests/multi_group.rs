//! Multiple transaction groups (§2.1): each group has its own replicated
//! write-ahead log and its own serialization order; transactions on
//! different groups never contend with each other, and there is no global
//! serializability across groups — exactly the paper's data model.

use parking_lot::Mutex;
use paxos_cp::mdstore::{
    ClientAction, Cluster, ClusterConfig, CommitProtocol, Msg, RunMetrics, Topology,
    TransactionClient,
};
use paxos_cp::simnet::{Actor, Context, NodeId, SimDuration};
use std::sync::Arc;

/// A client that issues `count` increment transactions against one group.
struct GroupWriter {
    client: Option<TransactionClient>,
    group: String,
    count: usize,
    metrics: Arc<Mutex<RunMetrics>>,
}

impl GroupWriter {
    fn apply(&mut self, ctx: &mut Context<Msg>, actions: Vec<ClientAction>) {
        for action in actions {
            match action {
                ClientAction::Send(to, msg) => ctx.send(to, msg),
                ClientAction::ArmTimer { delay, tag } => {
                    ctx.set_timer(delay, tag);
                }
                ClientAction::Finished(result) => {
                    self.metrics.lock().record(&result);
                    ctx.set_timer(SimDuration::from_millis(40), u64::MAX);
                }
            }
        }
    }

    fn start(&mut self, ctx: &mut Context<Msg>) {
        if self.count == 0 {
            return;
        }
        self.count -= 1;
        let client = self.client.as_mut().unwrap();
        client.begin(ctx.now(), &self.group).unwrap();
        let n = client
            .read("row", "n")
            .unwrap()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        client.write("row", "n", (n + 1).to_string()).unwrap();
        let actions = client.commit(ctx.now()).unwrap();
        self.apply(ctx, actions);
    }
}

impl Actor<Msg> for GroupWriter {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.start(ctx);
    }
    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let client = self.client.as_mut().unwrap();
        let actions = client.on_message(ctx.now(), from, &msg);
        self.apply(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == u64::MAX {
            self.start(ctx);
        } else {
            let client = self.client.as_mut().unwrap();
            let actions = client.on_timer(ctx.now(), tag);
            self.apply(ctx, actions);
        }
    }
}

fn add_group_writer(
    cluster: &mut Cluster,
    replica: usize,
    group: &str,
    count: usize,
) -> Arc<Mutex<RunMetrics>> {
    let metrics = Arc::new(Mutex::new(RunMetrics::default()));
    let directory = cluster.directory();
    let client_config = cluster.client_config();
    let sink = metrics.clone();
    let group = group.to_string();
    cluster.add_client(replica, |node| {
        Box::new(GroupWriter {
            client: Some(TransactionClient::new(
                node,
                replica,
                directory,
                client_config,
            )),
            group,
            count,
            metrics: sink,
        })
    });
    metrics
}

#[test]
fn groups_have_independent_logs_and_do_not_contend() {
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp));
    // Three groups, one dedicated writer each, all in the same datacenter.
    let m_orders = add_group_writer(&mut cluster, 0, "orders", 12);
    let m_users = add_group_writer(&mut cluster, 0, "users", 9);
    let m_carts = add_group_writer(&mut cluster, 1, "carts", 7);
    cluster.run_to_completion();

    // With a single writer per group there is no contention at all: every
    // transaction commits, none needs promotion.
    for (metrics, expected) in [(&m_orders, 12usize), (&m_users, 9), (&m_carts, 7)] {
        let m = metrics.lock();
        assert_eq!(m.committed, expected);
        assert_eq!(m.aborted, 0);
        assert_eq!(m.promoted_commits(), 0);
    }

    // Each group has its own log with exactly its own transactions, on every
    // replica.
    let symbols = cluster.symbols();
    let mut groups: Vec<String> = cluster
        .groups()
        .into_iter()
        .map(|g| {
            symbols
                .group_name(g)
                .expect("groups come from interned names")
        })
        .collect();
    groups.sort();
    assert_eq!(
        groups,
        vec!["carts".to_string(), "orders".into(), "users".into()]
    );
    for replica in 0..cluster.num_datacenters() {
        assert_eq!(cluster.committed_in_log(replica, "orders"), 12);
        assert_eq!(cluster.committed_in_log(replica, "users"), 9);
        assert_eq!(cluster.committed_in_log(replica, "carts"), 7);
    }

    // The checker verifies every group independently.
    let reports = cluster.verify().expect("all groups serializable");
    assert_eq!(reports.len(), 3);
    for (group, report) in reports {
        let name = symbols.group_name(group).expect("interned group");
        let expected = match name.as_str() {
            "orders" => 12,
            "users" => 9,
            "carts" => 7,
            other => panic!("unexpected group {other}"),
        };
        assert_eq!(report.transactions, expected);
        assert_eq!(report.positions, expected);
    }

    // And the per-group counters are visible through the key-value store at
    // every datacenter: the final value of each group's counter equals its
    // commit count.
    let item = symbols.item("row", "n");
    for replica in 0..cluster.num_datacenters() {
        for (group, expected) in [("orders", 12u64), ("users", 9), ("carts", 7)] {
            let group_id = symbols.group(group);
            let core = cluster.core(replica);
            let mut core = core.lock();
            let position = core.read_position(group_id);
            let value = core
                .read(group_id, item.key, item.attr, position)
                .unwrap()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            assert_eq!(value, expected, "group {group} at replica {replica}");
        }
    }
}

#[test]
fn contention_in_one_group_does_not_abort_transactions_in_another() {
    let mut cluster = Cluster::build(ClusterConfig::new(
        Topology::vvv(),
        CommitProtocol::BasicPaxos,
    ));
    // Two writers hammer the same "hot" group from different datacenters
    // (guaranteeing races for its log positions under basic Paxos), while a
    // third writer works on a "cold" group of its own.
    let hot_a = add_group_writer(&mut cluster, 0, "hot", 15);
    let hot_b = add_group_writer(&mut cluster, 1, "hot", 15);
    let cold = add_group_writer(&mut cluster, 2, "cold", 15);
    cluster.run_to_completion();

    let hot_committed = hot_a.lock().committed + hot_b.lock().committed;
    let hot_aborted = hot_a.lock().aborted + hot_b.lock().aborted;
    assert_eq!(hot_committed + hot_aborted, 30);
    assert!(
        hot_aborted > 0,
        "two basic-Paxos writers racing for the same group must abort something"
    );
    // The cold group is completely unaffected by the hot group's contention.
    assert_eq!(cold.lock().committed, 15);
    assert_eq!(cold.lock().aborted, 0);
    cluster.verify().expect("both groups serializable");
}
