//! Multiple transaction groups (§2.1): each group has its own replicated
//! write-ahead log and its own serialization order; transactions on
//! different groups never contend with each other, and there is no global
//! serializability across groups — exactly the paper's data model.
//!
//! The sharded/batched tests go further: a contended multi-group workload
//! (per-group leader map, batching committers, racing counter writers) must
//! leave a history where **any** interleaving of the per-group logs is a
//! valid one-copy serial order — the per-group checker verdicts are
//! invariant under how the independent logs are merged.

use parking_lot::Mutex;
use paxos_cp::mdstore::{
    BatchConfig, ClientAction, Cluster, ClusterConfig, CommitProtocol, GroupCommitter, Msg,
    RunMetrics, Session, Topology,
};
use paxos_cp::simnet::{Actor, Context, NodeId, SimDuration};
use paxos_cp::walog::{GroupId, GroupLog, ItemRef, Transaction, TxnId};
use std::collections::HashMap;
use std::sync::Arc;

/// A client that issues `count` increment transactions against one group.
struct GroupWriter {
    session: Option<Session>,
    group: String,
    count: usize,
    metrics: Arc<Mutex<RunMetrics>>,
}

impl GroupWriter {
    fn apply(&mut self, ctx: &mut Context<Msg>, actions: Vec<ClientAction>) {
        for action in actions {
            match action {
                ClientAction::Send(to, msg) => ctx.send(to, msg),
                ClientAction::ArmTimer { delay, tag } => {
                    ctx.set_timer(delay, tag);
                }
                ClientAction::Finished(result) => {
                    self.metrics.lock().record(&result);
                    ctx.set_timer(SimDuration::from_millis(40), u64::MAX);
                }
            }
        }
    }

    fn start(&mut self, ctx: &mut Context<Msg>) {
        if self.count == 0 {
            return;
        }
        self.count -= 1;
        let session = self.session.as_mut().unwrap();
        let h = session.begin(ctx.now(), &self.group);
        let n = session
            .read(h, "row", "n")
            .unwrap()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        session.write(h, "row", "n", (n + 1).to_string()).unwrap();
        let actions = session.commit(ctx.now(), h).unwrap();
        self.apply(ctx, actions);
    }
}

impl Actor<Msg> for GroupWriter {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.start(ctx);
    }
    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let session = self.session.as_mut().unwrap();
        let actions = session.on_message(ctx.now(), from, &msg);
        self.apply(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == u64::MAX {
            self.start(ctx);
        } else {
            let session = self.session.as_mut().unwrap();
            let actions = session.on_timer(ctx.now(), tag);
            self.apply(ctx, actions);
        }
    }
}

fn add_group_writer(
    cluster: &mut Cluster,
    replica: usize,
    group: &str,
    count: usize,
) -> Arc<Mutex<RunMetrics>> {
    let metrics = Arc::new(Mutex::new(RunMetrics::default()));
    let directory = cluster.directory();
    let client_config = cluster.client_config();
    let sink = metrics.clone();
    let group = group.to_string();
    cluster.add_client(replica, |node| {
        Box::new(GroupWriter {
            session: Some(Session::new(node, replica, directory, client_config)),
            group,
            count,
            metrics: sink,
        })
    });
    metrics
}

#[test]
fn groups_have_independent_logs_and_do_not_contend() {
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp));
    // Three groups, one dedicated writer each, all in the same datacenter.
    let m_orders = add_group_writer(&mut cluster, 0, "orders", 12);
    let m_users = add_group_writer(&mut cluster, 0, "users", 9);
    let m_carts = add_group_writer(&mut cluster, 1, "carts", 7);
    cluster.run_to_completion();

    // With a single writer per group there is no contention at all: every
    // transaction commits, none needs promotion.
    for (metrics, expected) in [(&m_orders, 12usize), (&m_users, 9), (&m_carts, 7)] {
        let m = metrics.lock();
        assert_eq!(m.committed, expected);
        assert_eq!(m.aborted, 0);
        assert_eq!(m.promoted_commits(), 0);
    }

    // Each group has its own log with exactly its own transactions, on every
    // replica.
    let symbols = cluster.symbols();
    let mut groups: Vec<String> = cluster
        .groups()
        .into_iter()
        .map(|g| {
            symbols
                .group_name(g)
                .expect("groups come from interned names")
        })
        .collect();
    groups.sort();
    assert_eq!(
        groups,
        vec!["carts".to_string(), "orders".into(), "users".into()]
    );
    for replica in 0..cluster.num_datacenters() {
        assert_eq!(cluster.committed_in_log(replica, "orders"), 12);
        assert_eq!(cluster.committed_in_log(replica, "users"), 9);
        assert_eq!(cluster.committed_in_log(replica, "carts"), 7);
    }

    // The checker verifies every group independently.
    let reports = cluster.verify().expect("all groups serializable");
    assert_eq!(reports.len(), 3);
    for (group, report) in reports {
        let name = symbols.group_name(group).expect("interned group");
        let expected = match name.as_str() {
            "orders" => 12,
            "users" => 9,
            "carts" => 7,
            other => panic!("unexpected group {other}"),
        };
        assert_eq!(report.transactions, expected);
        assert_eq!(report.positions, expected);
    }

    // And the per-group counters are visible through the key-value store at
    // every datacenter: the final value of each group's counter equals its
    // commit count.
    let item = symbols.item("row", "n");
    for replica in 0..cluster.num_datacenters() {
        for (group, expected) in [("orders", 12u64), ("users", 9), ("carts", 7)] {
            let group_id = symbols.group(group);
            let core = cluster.core(replica);
            let mut core = core.lock();
            let position = core.read_position(group_id);
            let value = core
                .read(group_id, item.key, item.attr, position)
                .unwrap()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            assert_eq!(value, expected, "group {group} at replica {replica}");
        }
    }
}

#[test]
fn contention_in_one_group_does_not_abort_transactions_in_another() {
    let mut cluster = Cluster::build(ClusterConfig::new(
        Topology::vvv(),
        CommitProtocol::BasicPaxos,
    ));
    // Two writers hammer the same "hot" group from different datacenters
    // (guaranteeing races for its log positions under basic Paxos), while a
    // third writer works on a "cold" group of its own.
    let hot_a = add_group_writer(&mut cluster, 0, "hot", 15);
    let hot_b = add_group_writer(&mut cluster, 1, "hot", 15);
    let cold = add_group_writer(&mut cluster, 2, "cold", 15);
    cluster.run_to_completion();

    let hot_committed = hot_a.lock().committed + hot_b.lock().committed;
    let hot_aborted = hot_a.lock().aborted + hot_b.lock().aborted;
    assert_eq!(hot_committed + hot_aborted, 30);
    assert!(
        hot_aborted > 0,
        "two basic-Paxos writers racing for the same group must abort something"
    );
    // The cold group is completely unaffected by the hot group's contention.
    assert_eq!(cold.lock().committed, 15);
    assert_eq!(cold.lock().aborted, 0);
    cluster.verify().expect("both groups serializable");
}

/// A batching writer: each round it submits `batch` read-modify-write
/// transactions over its own private attributes to its group's committer,
/// so a whole window rides one Paxos-CP instance.
struct BatchingWriter {
    committer: Option<GroupCommitter>,
    directory: Arc<paxos_cp::mdstore::Directory>,
    home: usize,
    items: Vec<ItemRef>,
    rounds_left: usize,
    outstanding: usize,
    seq: u64,
    metrics: Arc<Mutex<RunMetrics>>,
}

impl BatchingWriter {
    fn apply(&mut self, ctx: &mut Context<Msg>, actions: Vec<ClientAction>) {
        for action in actions {
            match action {
                ClientAction::Send(to, msg) => ctx.send(to, msg),
                ClientAction::ArmTimer { delay, tag } => {
                    ctx.set_timer(delay, tag);
                }
                ClientAction::Finished(result) => {
                    self.metrics.lock().record(&result);
                    self.outstanding = self.outstanding.saturating_sub(1);
                    if self.outstanding == 0 && self.rounds_left > 0 {
                        ctx.set_timer(SimDuration::from_millis(5), u64::MAX);
                    }
                }
            }
        }
    }

    fn start_round(&mut self, ctx: &mut Context<Msg>) {
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        let committer = self.committer.as_mut().unwrap();
        let group = committer.group();
        let read_position = committer.read_position();
        self.outstanding = self.items.len();
        let node = ctx.node().0;
        let mut actions = Vec::new();
        for item in self.items.clone() {
            // Read-modify-write of the writer's private attribute: the reads
            // give the cross-group replay check real reads-from edges.
            let observed = self
                .directory
                .core(self.home)
                .lock()
                .read(group, item.key, item.attr, read_position)
                .expect("local read below the gap-free prefix");
            self.seq += 1;
            let next = observed
                .as_deref()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
                + 1;
            let txn = Transaction::builder(TxnId::new(node, self.seq), group, read_position)
                .read(item, observed.as_deref())
                .write(item, next.to_string())
                .build();
            let committer = self.committer.as_mut().unwrap();
            actions.extend(committer.submit(ctx.now(), txn));
        }
        self.apply(ctx, actions);
    }
}

impl Actor<Msg> for BatchingWriter {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.start_round(ctx);
    }
    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let committer = self.committer.as_mut().unwrap();
        let actions = committer.on_message(ctx.now(), from, &msg);
        self.apply(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == u64::MAX {
            self.start_round(ctx);
        } else {
            let committer = self.committer.as_mut().unwrap();
            let actions = committer.on_timer(ctx.now(), tag);
            self.apply(ctx, actions);
        }
    }
}

/// One globally interleaved history: entries from several groups' logs in
/// an order that preserves each group's position order.
type MergedHistory = Vec<(GroupId, Arc<paxos_cp::walog::LogEntry>)>;

/// Interleave per-group logs entry by entry: `stride` controls the shape
/// (1 = round-robin one entry per group, `usize::MAX` = group-major).
fn interleave(logs: &[(GroupId, GroupLog)], stride: usize) -> MergedHistory {
    let mut cursors: Vec<(GroupId, Vec<Arc<paxos_cp::walog::LogEntry>>, usize)> = logs
        .iter()
        .map(|(g, log)| (*g, log.iter().map(|(_, e)| Arc::clone(e)).collect(), 0))
        .collect();
    let mut merged = Vec::new();
    let mut progressed = true;
    while progressed {
        progressed = false;
        for (group, entries, cursor) in cursors.iter_mut() {
            let take = stride.min(entries.len() - *cursor);
            for entry in &entries[*cursor..*cursor + take] {
                merged.push((*group, Arc::clone(entry)));
            }
            *cursor += take;
            progressed |= take > 0;
        }
    }
    merged
}

/// Replay a merged interleaving of several groups' logs and check that
/// every committed read is explained by the merged state, then return the
/// final state. Because groups' item spaces are disjoint, *every*
/// interleaving that preserves each group's position order must pass and
/// produce the same final state — the executable form of "per-group
/// serializability composes into global serializability over groups".
fn replay_interleaving(merged: &MergedHistory) -> HashMap<(GroupId, u64), String> {
    let mut state: HashMap<(GroupId, u64), String> = HashMap::new();
    for (group, entry) in merged {
        for txn in entry.transactions() {
            for read in txn.reads() {
                let current = state.get(&(*group, read.item.packed()));
                assert_eq!(
                    current.map(String::as_str),
                    read.observed.as_deref(),
                    "merged replay failed to explain a read of {} in {group}",
                    read.item,
                );
            }
            for write in txn.writes() {
                state.insert((*group, write.item.packed()), write.value.clone());
            }
        }
    }
    state
}

#[test]
fn sharded_batched_workload_is_serializable_under_any_log_interleaving() {
    let mut cluster =
        Cluster::build(ClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp).with_seed(9));
    let directory = cluster.directory();
    let groups: Vec<GroupId> = (0..6)
        .map(|g| directory.symbols().group(&format!("shard{g}")))
        .collect();

    // Per group: one batching writer homed at the group's leader datacenter
    // (windows of 3 independent transactions per instance) plus one counter
    // writer homed *elsewhere*, so positions are contended and promotions/
    // combinations happen alongside batches.
    let mut batch_metrics = Vec::new();
    let mut counter_metrics = Vec::new();
    for (g, group) in groups.iter().enumerate() {
        let home = directory.group_home(*group);
        let metrics = Arc::new(Mutex::new(RunMetrics::default()));
        batch_metrics.push(metrics.clone());
        let items: Vec<ItemRef> = (0..3)
            .map(|s| {
                ItemRef::new(
                    directory.symbols().key(&format!("shard{g}-row")),
                    directory.symbols().attr(&format!("s{s}")),
                )
            })
            .collect();
        let dir = directory.clone();
        let client_config = cluster.client_config();
        let sink = metrics;
        let group = *group;
        cluster.add_client(home, move |node| {
            Box::new(BatchingWriter {
                committer: Some(GroupCommitter::new(
                    node,
                    home,
                    group,
                    dir.clone(),
                    client_config,
                    BatchConfig::default().with_max_batch(3),
                )),
                directory: dir,
                home,
                items,
                rounds_left: 4,
                outstanding: 0,
                seq: 0,
                metrics: sink,
            })
        });
        let contender_home = (home + 1) % cluster.num_datacenters();
        counter_metrics.push(add_group_writer(
            &mut cluster,
            contender_home,
            &format!("shard{g}"),
            6,
        ));
    }
    cluster.run_to_completion();

    // Every transaction reached an outcome and something batched.
    let mut total = RunMetrics::default();
    for m in batch_metrics.iter().chain(counter_metrics.iter()) {
        total.merge(&m.lock());
    }
    assert_eq!(total.attempted, 6 * (4 * 3 + 6));
    assert!(total.committed > 0);
    assert!(
        total.combined_commits > 0,
        "windows of 3 independent transactions must produce combined entries"
    );

    // Per-group verdicts first (replica agreement + one-copy
    // serializability of each group's log).
    let reports = cluster.verify().expect("all shards serializable");
    assert_eq!(reports.len(), 6);

    // Batching must amortize instances: strictly fewer decided entries than
    // committed transactions.
    let committed_total: usize = groups
        .iter()
        .map(|g| cluster.committed_in_log_id(0, *g))
        .sum();
    let instances_total: usize = groups
        .iter()
        .map(|g| cluster.decided_instances_id(0, *g))
        .sum();
    assert!(
        instances_total < committed_total,
        "batching should commit {committed_total} txns in fewer than {committed_total} \
         instances, got {instances_total}"
    );

    // Cross-group invariance: replay several interleavings of the per-group
    // logs — group-major, reversed group-major, and round-robin one entry
    // per group. Every one must explain every read and all must agree on
    // the final state.
    let mut logs: Vec<(GroupId, GroupLog)> = groups
        .iter()
        .map(|g| (*g, cluster.replica_logs(*g).remove(0)))
        .collect();
    let group_major = interleave(&logs, usize::MAX);
    let round_robin = interleave(&logs, 1);
    logs.reverse();
    let reversed = interleave(&logs, usize::MAX);
    let a = replay_interleaving(&group_major);
    let b = replay_interleaving(&round_robin);
    let c = replay_interleaving(&reversed);
    assert_eq!(a, b, "final state must not depend on group interleaving");
    assert_eq!(a, c, "final state must not depend on group interleaving");
    assert!(!a.is_empty());
}
