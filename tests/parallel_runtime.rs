//! The two execution modes, checked against each other.
//!
//! * **Determinism** — the simnet is the canonical test mode precisely
//!   because it is reproducible: the same seeded workload must decide the
//!   *byte-identical* logs on every replica across two independent runs.
//! * **Equivalence** — the multi-threaded [`mdstore::ParallelCluster`]
//!   runs the untouched protocol actors on OS worker threads with
//!   wall-clock timers; on a conflict-free blind-write workload it must
//!   commit everything the simnet commits, pass the same serializability
//!   checker, and converge to the identical final store state (writer
//!   values are keyed by writer index, not node id, so the states are
//!   comparable across runtimes).

use mdstore::datacenter::SharedCore;
use mdstore::{
    Cluster, ClusterConfig, CommitProtocol, Msg, ParallelCluster, ParallelClusterConfig,
    RunMetrics, Topology,
};
use parking_lot::Mutex;
use simnet::{Actor, Context, NodeId, SimDuration};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use walog::{GroupId, ItemRef, Transaction, TxnId};
use workload::{ClientDriver, DriverConfig, KeyDistribution};

/// Concatenate every decided log entry of every replica and group into one
/// printable fingerprint (group ids are dense and sorted, replicas are in
/// datacenter order, positions are BTreeMap-sorted — all deterministic).
fn decided_log_fingerprint(cluster: &Cluster) -> String {
    let mut out = String::new();
    for group in cluster.groups() {
        for (replica, log) in cluster.replica_logs(group).iter().enumerate() {
            for (position, entry) in log.iter() {
                out.push_str(&format!(
                    "{group:?}@{replica}[{position}] {}\n",
                    entry.encode()
                ));
            }
        }
    }
    out
}

/// Run the paper's contended read/write workload on the simnet and return
/// the decided-log fingerprint.
fn seeded_contended_run(seed: u64) -> String {
    let mut cluster = Cluster::build(
        ClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp).with_seed(seed),
    );
    for w in 0..3 {
        let metrics = Arc::new(Mutex::new(RunMetrics::default()));
        let client_config = cluster.client_config();
        let driver_config = DriverConfig {
            group: "shard".into(),
            row_key: "hot".into(),
            num_attributes: 8,
            key_distribution: KeyDistribution::Zipfian { theta: 0.9 },
            num_transactions: 8,
            ops_per_txn: 3,
            read_fraction: 0.4,
            target_tps: 50.0,
            max_open: 2,
            start_delay: SimDuration::from_millis(5 * w as u64),
            op_delay: SimDuration::from_millis(1),
            op_jitter: 0.5,
            arrival_jitter: 0.3,
            seed: 1000 + w as u64,
        };
        let directory = cluster.directory();
        let sink = metrics;
        cluster.add_client(0, move |node| {
            Box::new(ClientDriver::new(
                node,
                0,
                directory,
                client_config,
                driver_config,
                sink,
            ))
        });
    }
    cluster.run_to_completion();
    cluster
        .verify()
        .expect("seeded contended run must be serializable");
    decided_log_fingerprint(&cluster)
}

/// Same seed, two independent simulations: byte-identical decided logs.
#[test]
fn same_seed_decides_byte_identical_logs() {
    let first = seeded_contended_run(4242);
    let second = seeded_contended_run(4242);
    assert!(!first.is_empty(), "the workload must decide log entries");
    assert_eq!(
        first, second,
        "two runs of the same seed must decide byte-identical logs"
    );
}

/// One strictly serial blind writer: submit one transaction, wait for its
/// decision, submit the next — so per-item write order (and therefore the
/// final store state) is causally fixed and identical in any runtime.
struct SerialWriter {
    /// Writer index; values are `w{label}-s{seq}`, independent of node id.
    label: usize,
    group: GroupId,
    service: NodeId,
    /// The group home's datacenter core, for read positions.
    core: SharedCore,
    items: Vec<ItemRef>,
    quota: u64,
    seq: u64,
    committed: Arc<AtomicUsize>,
    done: Arc<AtomicUsize>,
}

impl SerialWriter {
    fn submit_next(&mut self, ctx: &mut Context<Msg>) {
        if self.seq >= self.quota {
            self.done.fetch_add(1, Ordering::SeqCst);
            return;
        }
        let read_position = self.core.lock().read_position(self.group);
        self.seq += 1;
        let item = self.items[(self.seq as usize - 1) % self.items.len()];
        let txn = Transaction::builder(
            TxnId::new(ctx.node().0, self.seq),
            self.group,
            read_position,
        )
        .write(item, format!("w{}-s{}", self.label, self.seq))
        .build();
        ctx.send(
            self.service,
            Msg::CommitRequest {
                req_id: self.seq,
                txn,
            },
        );
    }
}

impl Actor<Msg> for SerialWriter {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.submit_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
        let Msg::CommitReply {
            req_id, committed, ..
        } = msg
        else {
            return;
        };
        assert_eq!(req_id, self.seq, "serial writer has one request in flight");
        if committed {
            self.committed.fetch_add(1, Ordering::SeqCst);
        }
        self.submit_next(ctx);
    }
}

const WRITERS: usize = 4;
const GROUPS: usize = 2;
const QUOTA: u64 = 5;
const ATTRS: usize = 3;

/// The items writer `w` owns (disjoint rows ⇒ conflict-free workload).
fn writer_item_names(w: usize) -> Vec<(String, String)> {
    (0..ATTRS)
        .map(|a| (format!("row{w}"), format!("a{a}")))
        .collect()
}

/// Expected final value of writer `w`'s item `i`: the last seq in
/// `1..=QUOTA` that cycled onto it (serial submission fixes the order).
fn expected_final(w: usize, item: usize) -> Option<String> {
    let mut last = None;
    for s in 1..=QUOTA {
        if (s as usize - 1) % ATTRS == item {
            last = Some(format!("w{w}-s{s}"));
        }
    }
    last
}

type FinalState = BTreeMap<(String, String), Option<String>>;

/// Run the conflict-free serial-writer workload on the simnet and return
/// (final state, committed count).
fn simnet_conflict_free_run() -> (FinalState, usize) {
    let mut cluster =
        Cluster::build(ClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp).with_seed(7));
    let symbols = cluster.symbols();
    let groups: Vec<GroupId> = (0..GROUPS)
        .map(|g| symbols.group(&format!("g{g}")))
        .collect();
    let committed = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicUsize::new(0));
    for w in 0..WRITERS {
        let group = groups[w % GROUPS];
        let home = cluster.directory().group_home(group);
        let items: Vec<ItemRef> = writer_item_names(w)
            .iter()
            .map(|(row, attr)| ItemRef::new(symbols.key(row), symbols.attr(attr)))
            .collect();
        let service = cluster.service_node(home);
        let core = cluster.core(home);
        let committed = Arc::clone(&committed);
        let done = Arc::clone(&done);
        cluster.add_client(home, move |_node| {
            Box::new(SerialWriter {
                label: w,
                group,
                service,
                core,
                items,
                quota: QUOTA,
                seq: 0,
                committed,
                done,
            })
        });
    }
    cluster.run_to_completion();
    assert_eq!(done.load(Ordering::SeqCst), WRITERS);
    cluster
        .verify()
        .expect("conflict-free simnet run must be serializable");

    let mut state = FinalState::new();
    for w in 0..WRITERS {
        let group = groups[w % GROUPS];
        let home = cluster.directory().group_home(group);
        let core = cluster.core(home);
        let mut core = core.lock();
        let position = core.read_position(group);
        for (row, attr) in writer_item_names(w) {
            let value = core
                .read(group, symbols.key(&row), symbols.attr(&attr), position)
                .unwrap();
            state.insert((row, attr), value);
        }
    }
    (state, committed.load(Ordering::SeqCst))
}

/// Run the identical workload on the 2-worker parallel runtime and return
/// (final state, committed count).
fn parallel_conflict_free_run() -> (FinalState, usize) {
    let mut cluster = ParallelCluster::build(
        ParallelClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp)
            .with_workers(2)
            .with_seed(7),
    );
    let symbols = cluster.symbols();
    let groups: Vec<GroupId> = (0..GROUPS)
        .map(|g| cluster.register_group(&format!("g{g}")))
        .collect();
    let committed = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicUsize::new(0));
    let replicas = cluster.num_datacenters();
    for w in 0..WRITERS {
        let group = groups[w % GROUPS];
        let items: Vec<ItemRef> = writer_item_names(w)
            .iter()
            .map(|(row, attr)| ItemRef::new(symbols.key(row), symbols.attr(attr)))
            .collect();
        let service = cluster.service_for_group(group);
        let core = cluster.home_core(group);
        let worker = cluster.shard_of_group(group);
        let committed = Arc::clone(&committed);
        let done = Arc::clone(&done);
        let writer = SerialWriter {
            label: w,
            group,
            service,
            core,
            items,
            quota: QUOTA,
            seq: 0,
            committed,
            done,
        };
        cluster.add_driver(worker, w % replicas, move |_node| Box::new(writer));
    }
    let done_flag = Arc::clone(&done);
    cluster.run(Duration::from_secs(30), move || {
        done_flag.load(Ordering::SeqCst) >= WRITERS
    });
    assert_eq!(
        done.load(Ordering::SeqCst),
        WRITERS,
        "every parallel writer must drain its quota before the wall-clock cap"
    );
    cluster
        .verify()
        .expect("conflict-free parallel run must be serializable");

    let mut state = FinalState::new();
    for w in 0..WRITERS {
        let group = groups[w % GROUPS];
        for (row, attr) in writer_item_names(w) {
            let value = cluster.read_committed(group, symbols.key(&row), symbols.attr(&attr));
            state.insert((row, attr), value);
        }
    }
    (state, committed.load(Ordering::SeqCst))
}

/// The same conflict-free workload through both runtimes: everything
/// commits, both pass the checker, and the final states match each other
/// and the causally-expected values.
#[test]
fn parallel_runtime_matches_simnet_on_conflict_free_workload() {
    let (sim_state, sim_committed) = simnet_conflict_free_run();
    let (par_state, par_committed) = parallel_conflict_free_run();

    let total = WRITERS * QUOTA as usize;
    assert_eq!(sim_committed, total, "conflict-free simnet run commits all");
    assert_eq!(
        par_committed, total,
        "conflict-free parallel run commits all"
    );
    assert_eq!(
        sim_state, par_state,
        "both runtimes must converge to the identical final store state"
    );
    for w in 0..WRITERS {
        for (i, (row, attr)) in writer_item_names(w).into_iter().enumerate() {
            assert_eq!(
                sim_state
                    .get(&(row.clone(), attr.clone()))
                    .cloned()
                    .flatten(),
                expected_final(w, i),
                "item ({row}, {attr}) must hold the last serial write"
            );
        }
    }
}
