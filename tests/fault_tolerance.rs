//! Availability and recovery: datacenter outages, lossy networks, remote
//! reads and log catch-up — the behaviours §2.2 and §4.1 of the paper
//! promise.

use parking_lot::Mutex;
use paxos_cp::mdstore::{
    ClientAction, Cluster, ClusterConfig, CommitProtocol, Msg, RunMetrics, Topology,
    TransactionClient,
};
use paxos_cp::simnet::{Actor, Context, NodeId, SimDuration};
use std::sync::Arc;

/// A minimal closed-loop writer client used by the fault-injection tests.
struct Writer {
    client: Option<TransactionClient>,
    remaining: usize,
    pause: SimDuration,
    metrics: Arc<Mutex<RunMetrics>>,
}

impl Writer {
    fn apply(&mut self, ctx: &mut Context<Msg>, actions: Vec<ClientAction>) {
        for action in actions {
            match action {
                ClientAction::Send(to, msg) => ctx.send(to, msg),
                ClientAction::ArmTimer { delay, tag } => {
                    ctx.set_timer(delay, tag);
                }
                ClientAction::Finished(result) => {
                    self.metrics.lock().record(&result);
                    if self.remaining > 0 {
                        ctx.set_timer(self.pause, u64::MAX);
                    }
                }
            }
        }
    }

    fn start(&mut self, ctx: &mut Context<Msg>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let client = self.client.as_mut().unwrap();
        client.begin(ctx.now(), "g").unwrap();
        let counter = client
            .read("row", "counter")
            .unwrap()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        client
            .write("row", "counter", (counter + 1).to_string())
            .unwrap();
        let actions = client.commit(ctx.now()).unwrap();
        self.apply(ctx, actions);
    }
}

impl Actor<Msg> for Writer {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.start(ctx);
    }
    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let client = self.client.as_mut().unwrap();
        let actions = client.on_message(ctx.now(), from, &msg);
        self.apply(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == u64::MAX {
            self.start(ctx);
        } else {
            let client = self.client.as_mut().unwrap();
            let actions = client.on_timer(ctx.now(), tag);
            self.apply(ctx, actions);
        }
    }
}

fn add_writer(cluster: &mut Cluster, replica: usize, count: usize) -> Arc<Mutex<RunMetrics>> {
    let metrics = Arc::new(Mutex::new(RunMetrics::default()));
    let directory = cluster.directory();
    let client_config = cluster.client_config();
    let sink = metrics.clone();
    cluster.add_client(replica, |node| {
        Box::new(Writer {
            client: Some(TransactionClient::new(
                node,
                replica,
                directory,
                client_config,
            )),
            remaining: count,
            pause: SimDuration::from_millis(50),
            metrics: sink,
        })
    });
    metrics
}

#[test]
fn commits_continue_while_a_minority_datacenter_is_down() {
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::voc(), CommitProtocol::PaxosCp));
    let metrics = add_writer(&mut cluster, 0, 40);
    cluster.run_for(SimDuration::from_secs(1));
    let before = metrics.lock().committed;

    cluster.crash_datacenter(2);
    cluster.run_for(SimDuration::from_secs(15));
    let during = metrics.lock().committed;
    assert!(
        during > before,
        "two of three datacenters must keep committing"
    );

    cluster.recover_datacenter(2);
    cluster.run_to_completion();
    let finished = {
        let m = metrics.lock();
        m.committed + m.aborted
    };
    assert_eq!(finished, 40);
    cluster
        .verify()
        .expect("post-recovery logs must agree and be serializable");
}

#[test]
fn recovered_datacenter_catches_up_through_remote_reads() {
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::voc(), CommitProtocol::PaxosCp));
    let metrics = add_writer(&mut cluster, 0, 25);

    // Crash California before anything commits, so it misses the whole run.
    cluster.crash_datacenter(2);
    cluster.run_for(SimDuration::from_secs(30));
    let committed = metrics.lock().committed;
    assert!(committed > 0);
    assert_eq!(
        cluster.committed_in_log(2, "g"),
        0,
        "the dead replica saw nothing"
    );

    // Recover it and ask its Transaction Service for a remote read at the
    // latest position: the service must run recovery instances to learn the
    // missing log prefix before answering.
    cluster.recover_datacenter(2);
    use paxos_cp::walog;
    let symbols = cluster.symbols();
    let group = symbols.group("g");
    let item = symbols.item("row", "counter");
    let latest = cluster.core(0).lock().read_position(group);
    struct RemoteReader {
        target: NodeId,
        group: walog::GroupId,
        item: walog::ItemRef,
        read_position: walog::LogPosition,
        answer: Arc<Mutex<Option<Option<String>>>>,
    }
    impl Actor<Msg> for RemoteReader {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            ctx.send(
                self.target,
                Msg::ReadRequest {
                    req_id: 1,
                    group: self.group,
                    key: self.item.key,
                    attr: self.item.attr,
                    read_position: self.read_position,
                },
            );
        }
        fn on_message(&mut self, _ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
            if let Msg::ReadReply { value, .. } = msg {
                *self.answer.lock() = Some(value);
            }
        }
    }
    let answer: Arc<Mutex<Option<Option<String>>>> = Arc::new(Mutex::new(None));
    let target = cluster.service_node(2);
    let answer_clone = answer.clone();
    cluster.add_client(1, move |_node| {
        Box::new(RemoteReader {
            target,
            group,
            item,
            read_position: latest,
            answer: answer_clone,
        })
    });
    cluster.run_to_completion();

    let got = answer
        .lock()
        .clone()
        .expect("the remote read must be answered");
    assert_eq!(
        got,
        Some(committed.to_string()),
        "the recovered replica must serve the latest committed counter value"
    );
    assert!(
        cluster.committed_in_log(2, "g") >= committed,
        "catch-up must have installed the missing log prefix"
    );
    cluster.verify().expect("logs agree after catch-up");
}

#[test]
fn a_two_datacenter_cluster_stalls_without_its_peer_and_resumes_after_recovery() {
    let mut cluster = Cluster::build(ClusterConfig::new(
        Topology::from_name("VV").unwrap(),
        CommitProtocol::BasicPaxos,
    ));
    let metrics = add_writer(&mut cluster, 0, 10);
    // With D = 2 the majority is 2: losing either datacenter blocks commits
    // (the price of synchronous majority replication).
    cluster.crash_datacenter(1);
    cluster.run_for(SimDuration::from_secs(30));
    assert_eq!(metrics.lock().committed, 0, "no majority, no commits");

    cluster.recover_datacenter(1);
    cluster.run_to_completion();
    assert!(
        metrics.lock().committed > 0,
        "commits resume once the peer returns"
    );
    cluster.verify().expect("logs agree after the stall");
}

#[test]
fn heavy_message_loss_slows_but_does_not_corrupt() {
    let mut cluster = Cluster::build(ClusterConfig::new(
        Topology::vvv().with_loss(0.25),
        CommitProtocol::PaxosCp,
    ));
    let metrics = add_writer(&mut cluster, 0, 15);
    cluster.run_to_completion();
    let m = metrics.lock();
    assert_eq!(m.committed + m.aborted, 15);
    assert!(m.committed > 0);
    drop(m);
    assert!(cluster.sim().stats().dropped_loss > 0);
    cluster
        .verify()
        .expect("lossy runs must still be serializable");
}
