//! Availability and recovery: datacenter outages, lossy networks, remote
//! reads and log catch-up — the behaviours §2.2 and §4.1 of the paper
//! promise — plus the failure edges of batched commits: internally
//! conflicting windows must split, and a leader failover mid-batch must
//! commit every member exactly once.

use parking_lot::Mutex;
use paxos_cp::mdstore::{
    BatchConfig, ClientAction, Cluster, ClusterConfig, CommitProtocol, GroupCommitter, Msg,
    RunMetrics, Session, Topology,
};
use paxos_cp::paxos::{Ballot, PaxosMsg};
use paxos_cp::simnet::{Actor, Context, NodeId, SimDuration};
use paxos_cp::walog::{ItemRef, LogEntry, LogPosition, Transaction, TxnId};
use std::sync::Arc;

/// A minimal closed-loop writer client used by the fault-injection tests.
/// By default each transaction read-modify-writes a shared counter; with
/// `blind_attr` set it blind-writes its own attribute instead (no reads —
/// such transactions promote past competing writers rather than abort).
struct Writer {
    session: Option<Session>,
    remaining: usize,
    pause: SimDuration,
    blind_attr: Option<String>,
    metrics: Arc<Mutex<RunMetrics>>,
}

impl Writer {
    fn apply(&mut self, ctx: &mut Context<Msg>, actions: Vec<ClientAction>) {
        for action in actions {
            match action {
                ClientAction::Send(to, msg) => ctx.send(to, msg),
                ClientAction::ArmTimer { delay, tag } => {
                    ctx.set_timer(delay, tag);
                }
                ClientAction::Finished(result) => {
                    self.metrics.lock().record(&result);
                    if self.remaining > 0 {
                        ctx.set_timer(self.pause, u64::MAX);
                    }
                }
            }
        }
    }

    fn start(&mut self, ctx: &mut Context<Msg>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let session = self.session.as_mut().unwrap();
        let h = session.begin(ctx.now(), "g");
        if let Some(prefix) = self.blind_attr.clone() {
            session
                .write(h, "row", &format!("{prefix}{}", self.remaining), "1")
                .unwrap();
        } else {
            let counter = session
                .read(h, "row", "counter")
                .unwrap()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            session
                .write(h, "row", "counter", (counter + 1).to_string())
                .unwrap();
        }
        let actions = session.commit(ctx.now(), h).unwrap();
        self.apply(ctx, actions);
    }
}

impl Actor<Msg> for Writer {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.start(ctx);
    }
    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let session = self.session.as_mut().unwrap();
        let actions = session.on_message(ctx.now(), from, &msg);
        self.apply(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == u64::MAX {
            self.start(ctx);
        } else {
            let session = self.session.as_mut().unwrap();
            let actions = session.on_timer(ctx.now(), tag);
            self.apply(ctx, actions);
        }
    }
}

fn add_writer_with(
    cluster: &mut Cluster,
    replica: usize,
    count: usize,
    blind_attr: Option<String>,
) -> Arc<Mutex<RunMetrics>> {
    let metrics = Arc::new(Mutex::new(RunMetrics::default()));
    let directory = cluster.directory();
    let client_config = cluster.client_config();
    let sink = metrics.clone();
    cluster.add_client(replica, |node| {
        Box::new(Writer {
            session: Some(Session::new(node, replica, directory, client_config)),
            remaining: count,
            pause: SimDuration::from_millis(50),
            blind_attr,
            metrics: sink,
        })
    });
    metrics
}

fn add_writer(cluster: &mut Cluster, replica: usize, count: usize) -> Arc<Mutex<RunMetrics>> {
    add_writer_with(cluster, replica, count, None)
}

#[test]
fn commits_continue_while_a_minority_datacenter_is_down() {
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::voc(), CommitProtocol::PaxosCp));
    let metrics = add_writer(&mut cluster, 0, 40);
    cluster.run_for(SimDuration::from_secs(1));
    let before = metrics.lock().committed;

    cluster.crash_datacenter(2);
    cluster.run_for(SimDuration::from_secs(15));
    let during = metrics.lock().committed;
    assert!(
        during > before,
        "two of three datacenters must keep committing"
    );

    cluster.recover_datacenter(2);
    cluster.run_to_completion();
    let finished = {
        let m = metrics.lock();
        m.committed + m.aborted
    };
    assert_eq!(finished, 40);
    cluster
        .verify()
        .expect("post-recovery logs must agree and be serializable");
}

#[test]
fn recovered_datacenter_catches_up_through_remote_reads() {
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::voc(), CommitProtocol::PaxosCp));
    let metrics = add_writer(&mut cluster, 0, 25);

    // Crash California before anything commits, so it misses the whole run.
    cluster.crash_datacenter(2);
    cluster.run_for(SimDuration::from_secs(30));
    let committed = metrics.lock().committed;
    assert!(committed > 0);
    assert_eq!(
        cluster.committed_in_log(2, "g"),
        0,
        "the dead replica saw nothing"
    );

    // Recover it and ask its Transaction Service for a remote read at the
    // latest position: the service must run recovery instances to learn the
    // missing log prefix before answering.
    cluster.recover_datacenter(2);
    use paxos_cp::walog;
    let symbols = cluster.symbols();
    let group = symbols.group("g");
    let item = symbols.item("row", "counter");
    let latest = cluster.core(0).lock().read_position(group);
    struct RemoteReader {
        target: NodeId,
        group: walog::GroupId,
        item: walog::ItemRef,
        read_position: walog::LogPosition,
        answer: Arc<Mutex<Option<Option<String>>>>,
    }
    impl Actor<Msg> for RemoteReader {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            ctx.send(
                self.target,
                Msg::ReadRequest {
                    req_id: 1,
                    group: self.group,
                    key: self.item.key,
                    attr: self.item.attr,
                    read_position: self.read_position,
                },
            );
        }
        fn on_message(&mut self, _ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
            if let Msg::ReadReply { value, .. } = msg {
                *self.answer.lock() = Some(value);
            }
        }
    }
    let answer: Arc<Mutex<Option<Option<String>>>> = Arc::new(Mutex::new(None));
    let target = cluster.service_node(2);
    let answer_clone = answer.clone();
    cluster.add_client(1, move |_node| {
        Box::new(RemoteReader {
            target,
            group,
            item,
            read_position: latest,
            answer: answer_clone,
        })
    });
    cluster.run_to_completion();

    let got = answer
        .lock()
        .clone()
        .expect("the remote read must be answered");
    assert_eq!(
        got,
        Some(committed.to_string()),
        "the recovered replica must serve the latest committed counter value"
    );
    assert!(
        cluster.committed_in_log(2, "g") >= committed,
        "catch-up must have installed the missing log prefix"
    );
    cluster.verify().expect("logs agree after catch-up");
}

#[test]
fn a_two_datacenter_cluster_stalls_without_its_peer_and_resumes_after_recovery() {
    let mut cluster = Cluster::build(ClusterConfig::new(
        Topology::from_name("VV").unwrap(),
        CommitProtocol::BasicPaxos,
    ));
    let metrics = add_writer(&mut cluster, 0, 10);
    // With D = 2 the majority is 2: losing either datacenter blocks commits
    // (the price of synchronous majority replication).
    cluster.crash_datacenter(1);
    cluster.run_for(SimDuration::from_secs(30));
    assert_eq!(metrics.lock().committed, 0, "no majority, no commits");

    cluster.recover_datacenter(1);
    cluster.run_to_completion();
    assert!(
        metrics.lock().committed > 0,
        "commits resume once the peer returns"
    );
    cluster.verify().expect("logs agree after the stall");
}

/// A scripted actor that sends a fixed batch of messages at start and
/// records everything it receives.
struct Prober {
    to_send: Vec<(NodeId, Msg)>,
    received: Arc<Mutex<Vec<Msg>>>,
}

impl Actor<Msg> for Prober {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        for (to, msg) in self.to_send.drain(..) {
            ctx.send(to, msg);
        }
    }
    fn on_message(&mut self, _ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
        self.received.lock().push(msg);
    }
}

#[test]
fn expired_remote_reads_are_counted_and_surfaced_in_run_metrics() {
    // Two datacenters, peer down: recovery instances can never reach the
    // majority of 2, so a remote read at position 2 parks. Long after the
    // requester's 2 s timeout, position 1 decides (injected Apply), which
    // re-attempts the parked read — still gapped at position 2, so it is
    // answered `unavailable`, evicted, and counted.
    let mut cluster = Cluster::build(ClusterConfig::new(
        Topology::from_name("VV").unwrap(),
        CommitProtocol::BasicPaxos,
    ));
    let symbols = cluster.symbols();
    let group = symbols.group("g");
    let item = symbols.item("row", "counter");
    cluster.crash_datacenter(1);

    let received = Arc::new(Mutex::new(Vec::new()));
    let target = cluster.service_node(0);
    let sink = received.clone();
    cluster.add_client(0, move |_node| {
        Box::new(Prober {
            to_send: vec![(
                target,
                Msg::ReadRequest {
                    req_id: 7,
                    group,
                    key: item.key,
                    attr: item.attr,
                    read_position: LogPosition(2),
                },
            )],
            received: sink,
        })
    });
    cluster.run_for(SimDuration::from_secs(10));
    assert!(received.lock().is_empty(), "the read must be parked");
    assert_eq!(cluster.expired_read_counts(), vec![0, 0]);

    // Decide position 1 at dc0: the flush finds the read still gapped and
    // past its requester's patience.
    let decided = Transaction::builder(TxnId::new(0, 1), group, LogPosition(0))
        .write(ItemRef::new(item.key, item.attr), "1")
        .build();
    cluster.add_client(0, move |_node| {
        Box::new(Prober {
            to_send: vec![(
                target,
                Msg::Paxos(PaxosMsg::Apply {
                    group,
                    position: LogPosition(1),
                    ballot: Ballot::initial(9),
                    value: Arc::new(LogEntry::single(decided)),
                }),
            )],
            received: Arc::new(Mutex::new(Vec::new())),
        })
    });
    cluster.run_for(SimDuration::from_secs(5));

    let got = received.lock();
    assert!(
        matches!(
            got.first(),
            Some(Msg::ReadReply {
                unavailable: true,
                value: None,
                ..
            })
        ),
        "expired read must be answered unavailable, got {got:?}"
    );
    drop(got);
    assert_eq!(cluster.expired_read_counts(), vec![1, 0]);

    // The ROADMAP follow-up: the counter surfaces through RunMetrics like
    // every other aggregate (the experiment runner populates it the same
    // way).
    let mut service_side = RunMetrics {
        expired_reads: cluster.expired_read_counts().iter().sum(),
        ..RunMetrics::default()
    };
    let mut totals = RunMetrics::default();
    totals.merge(&service_side);
    service_side.expired_reads = 0;
    assert_eq!(totals.expired_reads, 1);
}

/// Reserved timer tag for a [`BatchSubmitter`]'s delayed start (committer
/// tags count up from 1 and can never collide with it).
const SUBMITTER_START_TAG: u64 = u64::MAX;

/// Embeds a [`GroupCommitter`], submits one window of transactions at
/// start (optionally after a delay), and records per-member outcomes.
struct BatchSubmitter {
    committer: Option<GroupCommitter>,
    window: Vec<Transaction>,
    start_after: Option<SimDuration>,
    metrics: Arc<Mutex<RunMetrics>>,
}

impl BatchSubmitter {
    fn apply(&mut self, ctx: &mut Context<Msg>, actions: Vec<ClientAction>) {
        for action in actions {
            match action {
                ClientAction::Send(to, msg) => ctx.send(to, msg),
                ClientAction::ArmTimer { delay, tag } => {
                    ctx.set_timer(delay, tag);
                }
                ClientAction::Finished(result) => {
                    self.metrics.lock().record(&result);
                }
            }
        }
    }

    fn submit_window(&mut self, ctx: &mut Context<Msg>) {
        let mut actions = Vec::new();
        let committer = self.committer.as_mut().unwrap();
        for txn in self.window.drain(..) {
            actions.extend(committer.submit(ctx.now(), txn));
        }
        let committer = self.committer.as_mut().unwrap();
        actions.extend(committer.flush(ctx.now()));
        self.apply(ctx, actions);
    }
}

impl Actor<Msg> for BatchSubmitter {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        match self.start_after.take() {
            Some(delay) => {
                ctx.set_timer(delay, SUBMITTER_START_TAG);
            }
            None => self.submit_window(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let committer = self.committer.as_mut().unwrap();
        let actions = committer.on_message(ctx.now(), from, &msg);
        self.apply(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut Context<Msg>, tag: u64) {
        if tag == SUBMITTER_START_TAG {
            self.submit_window(ctx);
            return;
        }
        let committer = self.committer.as_mut().unwrap();
        let actions = committer.on_timer(ctx.now(), tag);
        self.apply(ctx, actions);
    }
}

fn add_batch_submitter(
    cluster: &mut Cluster,
    replica: usize,
    group: paxos_cp::walog::GroupId,
    window: Vec<Transaction>,
    batch_config: BatchConfig,
    start_after: Option<SimDuration>,
) -> Arc<Mutex<RunMetrics>> {
    let metrics = Arc::new(Mutex::new(RunMetrics::default()));
    let directory = cluster.directory();
    let client_config = cluster.client_config();
    let sink = metrics.clone();
    cluster.add_client(replica, move |node| {
        Box::new(BatchSubmitter {
            committer: Some(
                GroupCommitter::new(node, replica, group, directory, client_config, batch_config)
                    .with_metrics(sink.clone()),
            ),
            window,
            start_after,
            metrics: sink,
        })
    });
    metrics
}

#[test]
fn internally_conflicting_batch_splits_instead_of_committing_invalid_entry() {
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp));
    let symbols = cluster.symbols();
    let group = symbols.group("g");
    let x = symbols.item("row", "x");
    let y = symbols.item("row", "y");
    // Writer writes x; reader read x (observing nothing) and writes y. The
    // reader cannot ride in the same entry after the writer — the window
    // must split, and once the writer commits, the reader's read is stale:
    // it must abort with a conflict, never commit unserializably.
    let writer = Transaction::builder(TxnId::new(3, 1), group, LogPosition(0))
        .write(x, "written")
        .build();
    let reader = Transaction::builder(TxnId::new(3, 2), group, LogPosition(0))
        .read(x, None)
        .write(y, "reader")
        .build();
    let metrics = add_batch_submitter(
        &mut cluster,
        0,
        group,
        vec![writer, reader],
        BatchConfig::default().with_max_batch(2),
        None,
    );
    cluster.run_to_completion();

    let m = metrics.lock();
    assert_eq!(m.attempted, 2);
    assert_eq!(m.committed, 1, "only the writer may commit");
    assert_eq!(m.aborted, 1, "the stale reader must abort");
    drop(m);
    // The decided entry holds exactly the writer: no invalid combination.
    assert_eq!(cluster.committed_in_log(0, "g"), 1);
    assert_eq!(cluster.decided_instances_id(0, group), 1);
    cluster.verify().expect("split batch stays serializable");
}

#[test]
fn leader_failover_mid_batch_commits_every_member_exactly_once() {
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::voc(), CommitProtocol::PaxosCp));
    let symbols = cluster.symbols();
    let group = symbols.group("g");
    let directory = cluster.directory();
    // Lead the group from Oregon (replica 1); the batching client lives in
    // Virginia (replica 0), so its fast-path leader claim crosses the WAN.
    directory.set_group_home(group, 1);
    let window: Vec<Transaction> = (0..4)
        .map(|s| {
            Transaction::builder(TxnId::new(3, s + 1), group, LogPosition(0))
                .write(symbols.item("row", &format!("a{s}")), format!("v{s}"))
                .build()
        })
        .collect();
    let metrics = add_batch_submitter(
        &mut cluster,
        0,
        group,
        window,
        BatchConfig::default().with_max_batch(4),
        None,
    );

    // Crash the leader while the claim is still in flight (Virginia ↔
    // Oregon is a 45 ms one-way hop): the committer must time out, fall
    // back to the full prepare path, and decide through the remaining
    // majority — without re-proposing any member that already went out.
    cluster.run_for(SimDuration::from_millis(5));
    cluster.crash_datacenter(1);
    cluster.run_for(SimDuration::from_secs(30));

    let m = metrics.lock();
    assert_eq!(m.committed, 4, "every batch member commits exactly once");
    assert_eq!(m.aborted, 0);
    assert!(
        m.combined_commits >= 4,
        "the batch rides one combined entry"
    );
    drop(m);
    // One instance decided the whole batch; no member appears twice (L2 is
    // checked by verify, the counts pin it down explicitly).
    assert_eq!(cluster.committed_in_log(0, "g"), 4);
    assert_eq!(cluster.decided_instances_id(0, group), 1);

    // The recovered leader catches up and agrees.
    cluster.recover_datacenter(1);
    cluster.run_to_completion();
    cluster
        .verify()
        .expect("post-failover logs must agree and be serializable");
}

#[test]
fn leader_isolated_from_the_majority_stalls_while_the_majority_elects_and_progresses() {
    // VOC; Virginia (dc0) leads group "g". A partition isolates the leader
    // from BOTH other datacenters: dc1+dc2 form a connected majority with
    // no leader. The leader-side writer must stop committing (no majority
    // reachable); the majority-side writer must take over leadership via
    // the prepare path (its fast-path claims to dc0 time out) and keep
    // committing. After healing, every transaction reaches an outcome and
    // the logs agree.
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::voc(), CommitProtocol::PaxosCp));
    let group = cluster.symbols().group("g");
    cluster.directory().set_group_home(group, 0);
    // Both writers blind-write their own attributes: losing a position to
    // the competitor (or to the dead leader's orphaned majority-voted
    // value) promotes the transaction instead of aborting it — the
    // liveness path a takeover needs. The majority side carries enough
    // work to span the whole partition window.
    let leader_side = add_writer_with(&mut cluster, 0, 40, Some("a".into()));
    let majority_side = add_writer_with(&mut cluster, 1, 400, Some("b".into()));
    cluster.run_for(SimDuration::from_secs(2));

    {
        let net = cluster.sim_mut().network_mut();
        net.partition(paxos_cp::simnet::SiteId(0), paxos_cp::simnet::SiteId(1));
        net.partition(paxos_cp::simnet::SiteId(0), paxos_cp::simnet::SiteId(2));
    }
    // Let anything already past its accept quorum settle, then measure.
    cluster.run_for(SimDuration::from_secs(5));
    let leader_commits_at_partition = leader_side.lock().committed;
    let majority_commits_at_partition = majority_side.lock().committed;
    cluster.run_for(SimDuration::from_secs(30));
    assert_eq!(
        leader_side.lock().committed,
        leader_commits_at_partition,
        "the isolated leader must not commit without a majority"
    );
    assert!(
        majority_side.lock().committed > majority_commits_at_partition,
        "the connected majority must elect new leadership and progress"
    );

    cluster.sim_mut().network_mut().heal_all();
    cluster.run_to_completion();
    let leader = leader_side.lock();
    let majority = majority_side.lock();
    assert_eq!(leader.committed + leader.aborted, 40);
    assert_eq!(majority.committed + majority.aborted, 400);
    drop(leader);
    drop(majority);
    cluster
        .verify()
        .expect("post-partition logs must agree and be serializable");
}

/// Seed the ROADMAP's orphaned-position wedge: a dead proposer's value,
/// voted by every replica at position 1 but never applied (the proposer
/// prepared, gathered its accept quorum, then died before the apply
/// broadcast). The value writes the shared counter, so every read-carrying
/// transaction that prepares at position 1 discovers it, sees its reads
/// invalidated, and conflict-aborts *without completing the position* —
/// the wedge. Runs the simulation briefly to let the votes land.
fn seed_orphaned_position(cluster: &mut Cluster) {
    let symbols = cluster.symbols();
    let group = symbols.group("g");
    let item = symbols.item("row", "counter");
    let orphan = Transaction::builder(TxnId::new(99, 1), group, LogPosition(0))
        .write(item, "orphaned")
        .build();
    let value = Arc::new(LogEntry::single(orphan));
    let ballot = Ballot::initial(99);
    // Phase 1: the dead proposer's prepares (promises recorded everywhere).
    let prepares = (0..cluster.num_datacenters())
        .map(|replica| {
            (
                cluster.service_node(replica),
                Msg::Paxos(PaxosMsg::Prepare {
                    group,
                    position: LogPosition(1),
                    ballot,
                }),
            )
        })
        .collect();
    cluster.add_client(0, move |_node| {
        Box::new(Prober {
            to_send: prepares,
            received: Arc::new(Mutex::new(Vec::new())),
        })
    });
    cluster.run_for(SimDuration::from_millis(300));
    // Phase 2: its accepts — every replica votes; no apply ever follows.
    let accepts = (0..cluster.num_datacenters())
        .map(|replica| {
            (
                cluster.service_node(replica),
                Msg::Paxos(PaxosMsg::Accept {
                    group,
                    position: LogPosition(1),
                    ballot,
                    value: Arc::clone(&value),
                }),
            )
        })
        .collect();
    cluster.add_client(0, move |_node| {
        Box::new(Prober {
            to_send: accepts,
            received: Arc::new(Mutex::new(Vec::new())),
        })
    });
    cluster.run_for(SimDuration::from_millis(300));
    // Every replica now carries the orphan's vote.
    for replica in 0..cluster.num_datacenters() {
        let core = cluster.core(replica);
        let core = core.lock();
        assert!(
            core.acceptor()
                .current_vote(group, LogPosition(1))
                .is_some(),
            "replica {replica} must hold the orphan's vote"
        );
        assert!(!core.has_entry(group, LogPosition(1)));
    }
}

#[test]
fn orphaned_majority_voted_position_wedges_read_transactions_without_the_janitor() {
    // Control arm: with the janitor disabled, the orphaned value at
    // position 1 conflict-aborts every read-carrying transaction forever —
    // the liveness failure mode of the ROADMAP.
    let mut cluster = Cluster::build(
        ClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp).with_janitor(false),
    );
    seed_orphaned_position(&mut cluster);
    let metrics = add_writer(&mut cluster, 0, 30);
    cluster.run_for(SimDuration::from_secs(20));
    let m = metrics.lock();
    assert_eq!(
        m.committed, 0,
        "read-carrying transactions must stay wedged behind the orphan"
    );
    assert!(m.aborted > 0, "the writer must have tried and aborted");
}

#[test]
fn janitor_reproposes_the_orphaned_position_and_unwedges_read_transactions() {
    // Same wedge, janitor on (the default): once the first undecided
    // position stays orphaned past the patience window, the service
    // re-proposes it through a recovery instance, which adopts the
    // majority-voted value per the Paxos safety rule. The position decides,
    // the prefix advances, and read-carrying transactions commit again.
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::vvv(), CommitProtocol::PaxosCp));
    seed_orphaned_position(&mut cluster);
    let metrics = add_writer(&mut cluster, 0, 100);
    cluster.run_for(SimDuration::from_secs(30));
    let m = metrics.lock();
    assert!(
        m.committed > 0,
        "the janitor must unwedge the log (aborted {} of {} attempts)",
        m.aborted,
        m.attempted
    );
    drop(m);
    // The orphaned value itself was decided — adopted, not discarded.
    let symbols = cluster.symbols();
    let group = symbols.group("g");
    let core = cluster.core(0);
    let core = core.lock();
    let entry = core
        .log(group)
        .and_then(|log| log.get(LogPosition(1)))
        .expect("position 1 must have decided");
    assert_eq!(entry.txn_ids(), vec![TxnId::new(99, 1)]);
    drop(core);
    cluster
        .verify()
        .expect("janitor recovery must stay serializable");
}

#[test]
fn janitor_attempt_budget_resets_when_traffic_rehints_after_healing() {
    // VV cluster (majority 2) with the peer down: the janitor's
    // re-proposals of the orphaned position can never reach a majority and
    // exhaust their attempt budget. Once the peer recovers, fresh traffic
    // re-hints the group — the janitor must retry with a fresh budget and
    // finally decide the position, not stay given up forever.
    let mut cluster = Cluster::build(ClusterConfig::new(
        Topology::from_name("VV").unwrap(),
        CommitProtocol::PaxosCp,
    ));
    let symbols = cluster.symbols();
    let group = symbols.group("g");
    let orphan = Transaction::builder(TxnId::new(99, 1), group, LogPosition(0))
        .write(symbols.item("row", "counter"), "orphaned")
        .build();
    let value = Arc::new(LogEntry::single(orphan));
    let ballot = Ballot::initial(99);
    cluster.crash_datacenter(1);
    let seed_votes = |cluster: &mut Cluster| {
        let target = cluster.service_node(0);
        let to_send = vec![
            (
                target,
                Msg::Paxos(PaxosMsg::Prepare {
                    group,
                    position: LogPosition(1),
                    ballot,
                }),
            ),
            (
                target,
                Msg::Paxos(PaxosMsg::Accept {
                    group,
                    position: LogPosition(1),
                    ballot,
                    value: Arc::clone(&value),
                }),
            ),
        ];
        cluster.add_client(0, move |_node| {
            Box::new(Prober {
                to_send,
                received: Arc::new(Mutex::new(Vec::new())),
            })
        });
    };
    seed_votes(&mut cluster);
    // Long enough for every janitor attempt to run its recovery instance
    // into the round limit (64 rounds × ~2 s reply timeout each) and for
    // the whole attempt budget to exhaust.
    cluster.run_for(SimDuration::from_secs(1200));
    assert!(
        !cluster.core(0).lock().has_entry(group, LogPosition(1)),
        "no majority exists; the position must still be undecided"
    );

    cluster.recover_datacenter(1);
    // Fresh traffic (the dead proposer's duplicate accept) re-hints the
    // group at dc0.
    seed_votes(&mut cluster);
    cluster.run_for(SimDuration::from_secs(60));
    let core = cluster.core(0);
    let core = core.lock();
    let entry = core
        .log(group)
        .and_then(|log| log.get(LogPosition(1)))
        .expect("the re-hinted janitor must decide the position after healing");
    assert_eq!(entry.txn_ids(), vec![TxnId::new(99, 1)]);
}

#[test]
fn correlated_crash_during_accept_across_two_pipeline_slots_commits_exactly_once() {
    // Oregon (dc1) leads the group; the pipelined committer in Virginia
    // opens two slots at positions 1 and 2 whose fast-path grants return
    // at ~90 ms and whose accept broadcasts leave immediately after. The
    // leader crashes at 100 ms — while BOTH slots are mid-accept — so each
    // slot must reach its majority through the surviving datacenters, and
    // every member must commit exactly once (no double-apply, no loss).
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::voc(), CommitProtocol::PaxosCp));
    let symbols = cluster.symbols();
    let group = symbols.group("g");
    cluster.directory().set_group_home(group, 1);
    let window: Vec<Transaction> = (0..8)
        .map(|s| {
            Transaction::builder(TxnId::new(3, s + 1), group, LogPosition(0))
                .write(symbols.item("row", &format!("a{s}")), format!("v{s}"))
                .build()
        })
        .collect();
    let metrics = add_batch_submitter(
        &mut cluster,
        0,
        group,
        window,
        BatchConfig::default()
            .with_max_batch(4)
            .with_pipeline_depth(2)
            .with_adaptive(false),
        None,
    );

    cluster.run_for(SimDuration::from_millis(100));
    cluster.crash_datacenter(1);
    cluster.run_for(SimDuration::from_secs(30));

    let m = metrics.lock();
    assert_eq!(m.committed, 8, "every member of both slots commits");
    assert_eq!(m.aborted, 0);
    assert_eq!(
        m.max_pipeline_depth(),
        2,
        "both instances must have been in flight together"
    );
    drop(m);
    assert_eq!(cluster.committed_in_log(0, "g"), 8, "no double-apply");
    assert_eq!(cluster.decided_instances_id(0, group), 2);

    cluster.recover_datacenter(1);
    cluster.run_to_completion();
    cluster
        .verify()
        .expect("post-crash logs must agree and be serializable");
}

#[test]
fn lost_pipeline_slot_resubmits_survivors_in_order_exactly_once() {
    // A competing committer (same datacenter) claims position 1 first and
    // decides its own value there. The pipelined committer's head slot —
    // already mid-flight for position 1 with members t1..t4 while its
    // speculative slot drives t5..t8 at position 2 — loses: it must adopt
    // and push the winner through (so position 1 still decides locally),
    // then reschedule t1..t4, in order, at the pipeline tail (position 3).
    // Every transaction commits exactly once and the per-position entries
    // prove the recovery order.
    let mut cluster = Cluster::build(ClusterConfig::new(Topology::voc(), CommitProtocol::PaxosCp));
    let symbols = cluster.symbols();
    let group = symbols.group("g");
    cluster.directory().set_group_home(group, 0);
    let foreign = Transaction::builder(TxnId::new(9, 1), group, LogPosition(0))
        .write(symbols.item("row", "theirs"), "b")
        .build();
    let b_metrics = add_batch_submitter(
        &mut cluster,
        0,
        group,
        vec![foreign],
        BatchConfig::default()
            .with_max_batch(1)
            .with_pipeline_depth(1),
        None,
    );
    let window: Vec<Transaction> = (0..8)
        .map(|s| {
            Transaction::builder(TxnId::new(3, s + 1), group, LogPosition(0))
                .write(symbols.item("row", &format!("a{s}")), format!("v{s}"))
                .build()
        })
        .collect();
    let a_metrics = add_batch_submitter(
        &mut cluster,
        0,
        group,
        window,
        BatchConfig::default()
            .with_max_batch(4)
            .with_pipeline_depth(2)
            .with_adaptive(false),
        Some(SimDuration::from_millis(5)),
    );
    cluster.run_to_completion();

    let a = a_metrics.lock();
    assert_eq!(a.committed, 8, "all pipelined members commit exactly once");
    assert_eq!(a.aborted, 0);
    assert_eq!(
        a.commits_by_promotion,
        vec![4, 4],
        "the speculative slot commits directly, the lost head's survivors \
         commit after exactly one rescheduling"
    );
    drop(a);
    assert_eq!(b_metrics.lock().committed, 1);
    assert_eq!(cluster.committed_in_log(0, "g"), 9, "no double-apply");
    assert_eq!(cluster.decided_instances_id(0, group), 3);

    // The per-position entries prove in-order recovery: the competitor won
    // position 1, the speculative slot kept position 2, and the lost
    // head's survivors were rescheduled — as one block, in submission
    // order — at the tail position 3.
    let core = cluster.core(0);
    let core = core.lock();
    let log = core.log(group).expect("group log");
    let ids_at = |p: u64| -> Vec<TxnId> { log.get(LogPosition(p)).unwrap().txn_ids() };
    assert_eq!(ids_at(1), vec![TxnId::new(9, 1)]);
    assert_eq!(
        ids_at(2),
        (5..=8).map(|s| TxnId::new(3, s)).collect::<Vec<_>>()
    );
    assert_eq!(
        ids_at(3),
        (1..=4).map(|s| TxnId::new(3, s)).collect::<Vec<_>>()
    );
    drop(core);
    cluster
        .verify()
        .expect("slot-loss recovery must stay serializable");
}

#[test]
fn heavy_message_loss_slows_but_does_not_corrupt() {
    let mut cluster = Cluster::build(ClusterConfig::new(
        Topology::vvv().with_loss(0.25),
        CommitProtocol::PaxosCp,
    ));
    let metrics = add_writer(&mut cluster, 0, 15);
    cluster.run_to_completion();
    let m = metrics.lock();
    assert_eq!(m.committed + m.aborted, 15);
    assert!(m.committed > 0);
    drop(m);
    assert!(cluster.sim().stats().dropped_loss > 0);
    cluster
        .verify()
        .expect("lossy runs must still be serializable");
}

/// GC safety of the snapshot read plane across failover: an open
/// read-only handle's lease pins `MvKvStore::version_floor` at its
/// watermark, so the apply-time GC — even at horizon 0 — never reclaims a
/// version the snapshot can still read, including while the group leader
/// crashes, another replica recovers its positions, and new commits keep
/// applying (and collecting) on the serving core.
#[test]
fn snapshot_lease_pins_versions_across_leader_crash_and_recovery() {
    let mut cluster =
        Cluster::build(ClusterConfig::new(Topology::voc(), CommitProtocol::PaxosCp).with_seed(11));
    // Horizon 0: without a lease, only the newest version of a rewritten
    // key survives its next apply.
    for replica in 0..cluster.num_datacenters() {
        cluster.core(replica).lock().set_gc_horizon(0);
    }
    let metrics = add_writer(&mut cluster, 0, 8);
    cluster.run_to_completion();
    let committed = metrics.lock().committed;
    assert!(committed > 0, "the seed burst must commit");

    // Open a read-only handle homed at replica 1: it captures a watermark
    // from (and leases) one of the serving cores.
    let directory = cluster.directory();
    let mut session = Session::new(NodeId(990), 1, directory.clone(), cluster.client_config());
    let h = session.begin_read_only(cluster.now(), "g");
    let (serving, watermark) = session.snapshot_watermark(h).expect("open snapshot");
    assert_eq!(cluster.core(serving).lock().read_lease_count(), 1);
    let pinned = session.read(h, "row", "counter").unwrap();
    assert_eq!(
        pinned,
        Some(committed.to_string()),
        "the snapshot sees the seed burst's counter"
    );

    // Crash the group's home (its position leader) and let a writer at a
    // surviving datacenter drive recovery and a second burst of commits
    // that rewrite the same row — every apply GCs the row's versions.
    let group = cluster.symbols().group("g");
    let home = directory.group_home(group);
    assert_ne!(home, serving, "the lease must outlive the crashed home");
    cluster.crash_datacenter(home);
    let second = add_writer_with(&mut cluster, (home + 1) % 3, 8, Some("b".into()));
    cluster.run_for(SimDuration::from_secs(30));
    cluster.recover_datacenter(home);
    cluster.run_to_completion();
    assert!(
        second.lock().committed > 0,
        "the surviving majority must keep committing through the crash"
    );

    // The serving store's version floor for the row is still at or below
    // the snapshot's watermark: nothing the handle can read was reclaimed.
    let row = cluster.symbols().key("row");
    let app_key = paxos_cp::mvkv::Key(((group.0 as u64) << 32) | row.0 as u64);
    let floor = cluster
        .core(serving)
        .lock()
        .store()
        .version_floor(app_key, paxos_cp::mvkv::Timestamp(watermark.0))
        .expect("the pinned version exists");
    assert!(
        floor.0 <= watermark.0,
        "lease must pin the version a reader at {watermark:?} needs, floor was {floor:?}"
    );
    assert_eq!(
        session.read(h, "row", "counter").unwrap(),
        pinned,
        "the snapshot still reads its watermark value after crash + recovery + GC"
    );

    // Closing the handle releases the lease; the next rewrites reclaim.
    let now = cluster.now();
    let actions = session.commit(now, h).expect("read-only close");
    assert!(matches!(
        actions.as_slice(),
        [ClientAction::Finished(result)] if result.committed && result.read_only
    ));
    assert_eq!(cluster.core(serving).lock().read_lease_count(), 0);
    let reclaimed_before = cluster.reclaimed_version_counts()[serving];
    let third = add_writer(&mut cluster, serving, 6);
    cluster.run_to_completion();
    assert!(third.lock().committed > 0);
    assert!(
        cluster.reclaimed_version_counts()[serving] > reclaimed_before,
        "with the lease gone, horizon-0 GC reclaims the old versions"
    );
    cluster
        .verify()
        .expect("the whole scenario must stay serializable");
}
