//! Protocol-level properties of basic Paxos vs. Paxos-CP, checked on whole
//! simulated runs: the claims of §4–§6 of the paper as executable tests.

use paxos_cp::mdstore::{CommitProtocol, Topology};
use paxos_cp::workload::{run_experiment, ExperimentSpec};

fn contended_spec(protocol: CommitProtocol, seed: u64) -> ExperimentSpec {
    ExperimentSpec::paper_default(Topology::vvv(), protocol)
        .named(format!("prop-{}-{seed}", protocol.name()))
        .with_clients(4, 25)
        .with_attributes(100)
        .with_seed(seed)
}

#[test]
fn basic_paxos_never_promotes_or_combines() {
    let result = run_experiment(&contended_spec(CommitProtocol::BasicPaxos, 1));
    assert_eq!(result.totals.promoted_commits(), 0);
    assert_eq!(result.totals.combined_commits, 0);
    assert_eq!(result.totals.commits_by_promotion.len().max(1), 1);
}

#[test]
fn paxos_cp_commits_strictly_more_than_basic_under_contention() {
    // The paper's headline result (Figures 4, 6, 7, 8): under contention the
    // promotion mechanism recovers transactions basic Paxos would abort.
    for seed in [3, 5, 8] {
        let basic = run_experiment(&contended_spec(CommitProtocol::BasicPaxos, seed));
        let cp = run_experiment(&contended_spec(CommitProtocol::PaxosCp, seed));
        assert!(
            cp.totals.committed > basic.totals.committed,
            "seed {seed}: cp {} vs basic {}",
            cp.totals.committed,
            basic.totals.committed
        );
        assert!(
            cp.totals.promoted_commits() > 0,
            "promotions must contribute"
        );
    }
}

#[test]
fn promotion_cap_bounds_the_promotion_rounds() {
    let mut spec = contended_spec(CommitProtocol::PaxosCp, 13);
    spec.max_promotions = Some(Some(1));
    let result = run_experiment(&spec);
    assert!(
        result.totals.commits_by_promotion.len() <= 2,
        "no commit may use more than one promotion, got {:?}",
        result.totals.commits_by_promotion
    );
}

#[test]
fn unlimited_promotions_commit_at_least_as_many_as_capped() {
    let mut capped = contended_spec(CommitProtocol::PaxosCp, 21);
    capped.max_promotions = Some(Some(0));
    let capped_result = run_experiment(&capped);
    let unlimited_result = run_experiment(&contended_spec(CommitProtocol::PaxosCp, 21));
    assert!(
        unlimited_result.totals.committed >= capped_result.totals.committed,
        "unlimited {} vs capped {}",
        unlimited_result.totals.committed,
        capped_result.totals.committed
    );
}

#[test]
fn disabling_combination_still_produces_correct_histories() {
    let mut spec = contended_spec(CommitProtocol::PaxosCp, 34);
    spec.combination = Some(false);
    let result = run_experiment(&spec);
    assert_eq!(result.totals.combined_commits, 0);
    assert!(result.totals.committed > 0);
}

#[test]
fn disabling_the_fast_path_still_commits_everything_eventually() {
    let mut spec = contended_spec(CommitProtocol::PaxosCp, 45);
    spec.fast_path = Some(false);
    let result = run_experiment(&spec);
    assert_eq!(result.attempted, 100);
    assert!(result.totals.committed > 0);
}

#[test]
fn low_contention_lets_paxos_cp_commit_nearly_everything() {
    // Mirrors the right-hand side of Figure 6: with 500 attributes and ten
    // operations per transaction, read-write conflicts are rare, so almost
    // every transaction commits (directly or after promotion).
    let spec = contended_spec(CommitProtocol::PaxosCp, 60).with_attributes(500);
    let result = run_experiment(&spec);
    let ratio = result.commit_ratio();
    assert!(
        ratio > 0.9,
        "expected >90% commits at low contention, got {ratio}"
    );
}

#[test]
fn higher_offered_load_does_not_break_safety_and_lowers_commit_ratio() {
    // Mirrors Figure 7: more offered load means more competition for each
    // log position; commit counts drop but serializability always holds.
    let slow = run_experiment(&contended_spec(CommitProtocol::BasicPaxos, 70).with_target_tps(0.5));
    let fast = run_experiment(&contended_spec(CommitProtocol::BasicPaxos, 70).with_target_tps(8.0));
    assert!(
        fast.totals.committed <= slow.totals.committed,
        "fast {} vs slow {}",
        fast.totals.committed,
        slow.totals.committed
    );
}
