//! Determinism regression: the same seed must produce byte-identical
//! results — decided-log serial order, outcome counters, everything.
//!
//! This is the runtime counterpart of the `determinism` protocol lint
//! (crates/analysis): the lint statically bans hash-ordered iteration and
//! hidden entropy from simnet-reachable code, and this test catches
//! whatever slips through by diffing two full runs. Before the service and
//! datacenter maps moved to BTree collections, reply and flush order
//! followed `HashMap`'s per-process hasher seed, and two identical runs
//! could abort different transactions.

use paxos_cp::mdstore::{CommitProtocol, Topology};
use paxos_cp::workload::{run_experiment, ExperimentSpec};
use simnet::{ChaosSpec, SimDuration};

/// Render everything about a run that determinism is answerable for:
/// the per-group decided-log reports (including the exact serial order of
/// transaction ids) and the aggregate counters.
fn run_digest(spec: &ExperimentSpec) -> String {
    let result = run_experiment(spec);
    format!(
        "check={:?} totals={:?} per_client={:?} duration={:?}",
        result.check, result.totals, result.per_client, result.duration
    )
}

#[test]
fn same_seed_runs_are_byte_identical() {
    for protocol in [CommitProtocol::BasicPaxos, CommitProtocol::PaxosCp] {
        let spec = ExperimentSpec::paper_default(Topology::vvv(), protocol)
            .named("determinism-regression")
            .with_clients(3, 15)
            .with_seed(424242);
        let first = run_digest(&spec);
        let second = run_digest(&spec);
        assert_eq!(
            first, second,
            "{protocol:?}: two runs with one seed diverged — nondeterministic \
             iteration or hidden entropy reached the protocol"
        );
    }
}

#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    // Crashes drive the recovery paths (timer re-fires, pending-read
    // flushes) that iterate the converted service maps.
    let spec = ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::PaxosCp)
        .named("determinism-chaos-regression")
        .with_clients(3, 12)
        .with_seed(777)
        .with_chaos(
            ChaosSpec::new(SimDuration::from_secs(4)).with_rolling_crashes(
                2,
                SimDuration::from_secs(1),
                SimDuration::from_millis(300),
            ),
        );
    let first = run_digest(&spec);
    let second = run_digest(&spec);
    assert_eq!(
        first, second,
        "chaos runs with one seed diverged — recovery paths are order-sensitive"
    );
}

#[test]
fn different_seeds_actually_change_the_run() {
    // Guard against the digest being vacuous (e.g. all fields constant).
    let base = ExperimentSpec::paper_default(Topology::vvv(), CommitProtocol::PaxosCp)
        .named("determinism-sensitivity")
        .with_clients(3, 15);
    let a = run_digest(&base.clone().with_seed(1));
    let b = run_digest(&base.with_seed(2));
    assert_ne!(
        a, b,
        "the digest must be sensitive to the run's actual history"
    );
}
