//! The durable storage plane, end to end: a crashed datacenter restarts
//! from its group snapshots plus the WAL tail and reproduces exactly the
//! state it acknowledged — under the same 60-second rolling-failure chaos
//! schedule the in-memory plane is held to, with every crash tearing the
//! final WAL frame first. The file also pins the plane's failure edges as
//! typed behaviours: replay stops at the first bad frame and never
//! resynchronises past it, a short read of the final record costs exactly
//! that record, and an injected fsync error withholds the ack without
//! poisoning the log.

use mdstore::{DatacenterCore, DurableConfig, StorageConfig};
use simnet::SimDuration;
use storage::wal::{self, Wal, WalRecord};
use storage::{fault, DcStorage, StorageError};
use walog::{AttrId, GroupId, ItemRef, KeyId, LogEntry, LogPosition, Transaction, TxnId};
use workload::{run_chaos, ChaosRunSpec};

const GROUP: GroupId = GroupId(0);
const ROW: KeyId = KeyId(0);
const A: AttrId = AttrId(0);

fn write_entry(client: u32, seq: u64, read_pos: u64, value: &str) -> std::sync::Arc<LogEntry> {
    std::sync::Arc::new(LogEntry::single(
        Transaction::builder(TxnId::new(client, seq), GROUP, LogPosition(read_pos))
            .write(ItemRef::new(ROW, A), value)
            .build(),
    ))
}

/// A durable datacenter core over a scratch directory, snapshotting every
/// four positions and rotating WAL segments nearly every record so short
/// runs exercise truncation.
fn durable_core(label: &str) -> (DatacenterCore, DurableConfig) {
    let mut cfg = DurableConfig::new(storage::scratch_dir(label));
    cfg.snapshot_every = 4;
    cfg.segment_bytes = 128;
    let mut core = DatacenterCore::new("dc0", 0);
    core.set_gc_horizon(0);
    core.attach_storage(DcStorage::open(cfg.clone()).unwrap());
    (core, cfg)
}

/// The ISSUE's durable acceptance scenario: the full 60 s rolling-failure
/// schedule with durability enabled. Every crashed datacenter gets its WAL
/// tail torn before it recovers, every recovery goes through
/// restart-from-disk (which asserts the rebuilt state fingerprint matches
/// the pre-crash one), and the exactly-once audit still holds even though
/// snapshots have truncated the early log positions out from under it.
#[test]
fn sixty_seconds_of_durable_rolling_chaos_restarts_every_crashed_site_from_disk() {
    let dir = storage::scratch_dir("durable-chaos-60s");
    let spec = ChaosRunSpec::rolling_failure(SimDuration::from_secs(60))
        .with_storage(StorageConfig::Durable(DurableConfig::new(&dir)));
    let result = run_chaos(&spec);
    storage::remove_scratch_dir(&dir);
    assert!(result.committed > 0);
    assert_eq!(
        result.unavailable, 0,
        "re-submission must absorb fault windows with durability on"
    );
    assert!(
        result.durable_restarts >= 10,
        "rolling crashes every ~2 s must keep exercising restart-from-disk, saw {}",
        result.durable_restarts
    );
    assert!(
        result.torn_wal_tails >= 10,
        "every crash tears the WAL tail; recovery must tolerate each one, saw {}",
        result.torn_wal_tails
    );
    assert_eq!(result.window_commits.len(), 60);
    assert!(
        result.min_window_commits > 0,
        "committed throughput flatlined: {:?}",
        result.window_commits
    );
}

/// Restart-from-disk must reproduce the acknowledged state bit for bit:
/// the fingerprint covers every group's log base, entries and committed
/// transaction ids plus the latest version of every row. A torn final WAL
/// frame (the crash-mid-append artifact) costs nothing that was acked.
#[test]
fn restart_from_disk_reproduces_the_acknowledged_state_exactly() {
    let (mut core, cfg) = durable_core("restart-exact");
    let ballot = paxos::Ballot::initial(7);
    core.acceptor()
        .handle_prepare(GROUP, LogPosition(30), ballot);
    assert!(core.persist_promise(GROUP, LogPosition(30), ballot));
    for p in 1..=12 {
        core.install_entry(
            GROUP,
            LogPosition(p),
            write_entry(0, p, p - 1, &format!("v{p}")),
        );
    }
    let stats = core.storage_stats().unwrap();
    assert!(stats.snapshots_written >= 1, "snapshot cadence must fire");
    assert!(stats.segments_truncated >= 1, "sealed segments must go");
    let fingerprint = core.state_fingerprint();
    core.inject_torn_wal_tail();
    let report = core.restart_from_disk(&cfg).unwrap();
    assert!(report.torn_tail, "the injected tear must be observed");
    assert!(report.snapshots_restored >= 1);
    assert!(report.wal_records_replayed >= 1);
    assert_eq!(
        core.state_fingerprint(),
        fingerprint,
        "recovered state must be byte-identical to the acknowledged state"
    );
    assert_eq!(
        core.read(GROUP, ROW, A, LogPosition(12)).unwrap(),
        Some("v12".to_string())
    );
    assert_eq!(
        core.acceptor().promised_ballot(GROUP, LogPosition(30)),
        Some(ballot),
        "undecided-position promises ride the WAL too"
    );
    storage::remove_scratch_dir(&cfg.dir);
}

/// An open snapshot read lease pins both version GC and WAL truncation —
/// and keeps pinning them across a crash-restart, because leases belong to
/// clients in other processes and must survive a local recovery. Releasing
/// the lease lets the next snapshot cadence resume truncation.
#[test]
fn open_lease_pins_truncation_across_crash_restart_and_release_resumes_it() {
    let (mut core, cfg) = durable_core("lease-across-restart");
    core.begin_read_lease(GROUP, LogPosition(2));
    for p in 1..=9 {
        core.install_entry(GROUP, LogPosition(p), write_entry(0, p, p - 1, "v"));
    }
    assert!(core.storage_stats().unwrap().snapshots_written >= 1);
    assert!(
        core.log(GROUP).unwrap().base() < LogPosition(2),
        "truncation must hold below the leased position"
    );
    // Crash and restart: the lease is client-owned soft state and survives.
    core.inject_torn_wal_tail();
    core.restart_from_disk(&cfg).unwrap();
    assert_eq!(core.read_lease_count(), 1, "leases must survive recovery");
    for p in 10..=13 {
        core.install_entry(GROUP, LogPosition(p), write_entry(0, p, p - 1, "v"));
    }
    assert!(
        core.log(GROUP).unwrap().base() < LogPosition(2),
        "the recovered lease must keep pinning truncation"
    );
    assert_eq!(
        core.read(GROUP, ROW, A, LogPosition(2)).unwrap(),
        Some("v".to_string()),
        "the leased snapshot must stay servable after recovery"
    );
    // Release: the next snapshot advances the floor past the old lease.
    core.end_read_lease(GROUP, LogPosition(2));
    for p in 14..=17 {
        core.install_entry(GROUP, LogPosition(p), write_entry(0, p, p - 1, "v"));
    }
    assert!(
        core.log(GROUP).unwrap().base() >= LogPosition(2),
        "truncation must resume once the lease is released"
    );
    storage::remove_scratch_dir(&cfg.dir);
}

fn promise(position: u64, round: u64) -> WalRecord {
    WalRecord::Promise {
        group: GROUP,
        position: LogPosition(position),
        ballot: paxos::Ballot { round, proposer: 1 },
    }
}

/// Replay walks frames front to back and stops at the first bad one — it
/// never resynchronises, so a valid frame written after garbage (a torn
/// crash artifact followed by reused sectors) is not trusted.
#[test]
fn replay_stops_at_the_first_bad_frame_and_never_resyncs() {
    let dir = storage::scratch_dir("replay-first-bad");
    let mut w = Wal::open(&dir, 1 << 20).unwrap();
    for p in 1..=3 {
        w.append(&promise(p, 1));
    }
    w.sync().unwrap();
    w.inject_torn_tail().unwrap();
    let seg = dir.join(format!("wal-{:06}.seg", w.active_segment()));
    drop(w);
    // A structurally valid frame after the tear must stay untrusted.
    let mut tail = Vec::new();
    storage::frame::append_frame(&mut tail, &promise(9, 9).encode());
    use std::io::Write as _;
    std::fs::OpenOptions::new()
        .append(true)
        .open(&seg)
        .unwrap()
        .write_all(&tail)
        .unwrap();
    let replay = wal::replay(&dir).unwrap();
    assert!(replay.torn_tail);
    assert_eq!(replay.records.len(), 3, "{:?}", replay.records);
    assert!(replay
        .records
        .iter()
        .all(|r| r.position() <= LogPosition(3)));
    storage::remove_scratch_dir(&dir);
}

/// A short read of the final record (a sector that never hit the platter)
/// costs exactly that record: everything before it replays intact.
#[test]
fn a_short_read_of_the_final_record_costs_exactly_that_record() {
    let dir = storage::scratch_dir("replay-short-read");
    let mut w = Wal::open(&dir, 1 << 20).unwrap();
    for p in 1..=3 {
        w.append(&promise(p, 1));
    }
    w.sync().unwrap();
    let seg = dir.join(format!("wal-{:06}.seg", w.active_segment()));
    drop(w);
    fault::shorten_tail(&seg, 3).unwrap();
    let replay = wal::replay(&dir).unwrap();
    assert!(replay.torn_tail);
    assert_eq!(replay.records.len(), 2);
    storage::remove_scratch_dir(&dir);
}

/// An fsync failure is a typed error — `StorageError::SyncFailed` with the
/// injection provenance — and the records it covered stay pending: they are
/// not acknowledged, and a later successful sync may still land them.
#[test]
fn fsync_failure_is_typed_and_withholds_the_ack_without_losing_the_records() {
    let dir = storage::scratch_dir("fsync-typed");
    let mut w = Wal::open(&dir, 1 << 20).unwrap();
    w.append(&promise(1, 1));
    w.fault_mut().fail_next_syncs(1);
    let err = w.sync().unwrap_err();
    assert!(
        matches!(err, StorageError::SyncFailed { injected: true, .. }),
        "{err}"
    );
    // The failed batch stays buffered; the next sync persists it.
    w.append(&promise(2, 1));
    assert_eq!(w.sync().unwrap(), 2);
    drop(w);
    let replay = wal::replay(&dir).unwrap();
    assert_eq!(replay.records.len(), 2);
    storage::remove_scratch_dir(&dir);

    // The same failure through the datacenter storage facade: `log` (the
    // persist-before-ack primitive) reports false, so no reply is sent.
    let cfg = DurableConfig::new(storage::scratch_dir("fsync-facade"));
    let mut dc = DcStorage::open(cfg.clone()).unwrap();
    dc.fault_mut().fail_next_syncs(1);
    assert!(
        !dc.log(&promise(1, 1)),
        "a failed sync must withhold the ack"
    );
    assert_eq!(dc.stats().sync_failures, 1);
    assert!(dc.log(&promise(2, 1)), "a later sync may still persist");
    storage::remove_scratch_dir(&cfg.dir);
}
